//! The level-wise partition engine: exact and approximate CTANE, TANE
//! and CFDMiner on the synthetic tax workload, at 1/2/4 worker threads.
//!
//! What this measures: the zero-allocation refinement engine
//! (`StrippedPartition::refine_into` through a reusable scratch, bitset
//! `C⁺` sets, count-only final levels, measure-at-emission) against the
//! PR 4 baseline recorded in `BENCH_APPROX.json` — `exact/1000` there
//! is the same workload as `ctane-exact/1000 × threads-1` here — plus
//! the thread-scaling curve of the sharded level expansion.
//!
//! The recorded numbers live in `BENCH_LEVELWISE.json` at the
//! repository root; re-run with
//! `cargo bench -p cfd-bench --bench levelwise` and update the file
//! (with machine notes — thread scaling is meaningless without the
//! core count) when they move.

use cfd_core::api::{Algo, Control, DiscoverOptions, Discoverer};
use cfd_datagen::tax::TaxGenerator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("levelwise");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let ctrl = Control::default();
    for dbsize in [500usize, 1_000] {
        let rel = TaxGenerator::new(dbsize).generate();
        let k = (dbsize / 1000).max(2);
        for threads in [1usize, 2, 4] {
            // the acceptance workload: exact CTANE (BENCH_APPROX.json's
            // exact/1000 is the 1-thread point of this line)
            let exact = DiscoverOptions::new(k).threads(threads);
            let id = BenchmarkId::new(format!("ctane-exact/{dbsize}"), format!("t{threads}"));
            group.bench_with_input(id, &rel, |b, rel| {
                b.iter(|| Algo::Ctane.discover_with(rel, &exact, &ctrl).unwrap().cover)
            });
            // θ = 0.9: exercises the partition cache + keep counts
            let approx = DiscoverOptions::new(k).threads(threads).min_confidence(0.9);
            let id = BenchmarkId::new(format!("ctane-theta09/{dbsize}"), format!("t{threads}"));
            group.bench_with_input(id, &rel, |b, rel| {
                b.iter(|| {
                    Algo::Ctane
                        .discover_with(rel, &approx, &ctrl)
                        .unwrap()
                        .cover
                })
            });
        }
    }
    // the other level-wise miners, 1000-row workload only
    let rel = TaxGenerator::new(1_000).generate();
    for threads in [1usize, 4] {
        let opts = DiscoverOptions::new(2).threads(threads);
        let id = BenchmarkId::new("tane/1000", format!("t{threads}"));
        group.bench_with_input(id, &rel, |b, rel| {
            b.iter(|| Algo::Tane.discover_with(rel, &opts, &ctrl).unwrap().cover)
        });
        let id = BenchmarkId::new("cfdminer/1000", format!("t{threads}"));
        group.bench_with_input(id, &rel, |b, rel| {
            b.iter(|| {
                Algo::CfdMiner
                    .discover_with(rel, &opts, &ctrl)
                    .unwrap()
                    .cover
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
