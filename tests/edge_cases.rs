//! Degenerate and adversarial inputs: every algorithm must agree and
//! stay sound on the boundaries of the input space.

use cfd_suite::core::audit_cover;
use cfd_suite::fd::{FastFd, Tane};
use cfd_suite::prelude::*;

fn rel_of(rows: &[Vec<&str>], names: &[&str]) -> Relation {
    let schema = Schema::new(names.to_vec()).unwrap();
    cfd_suite::model::relation::relation_from_rows(schema, rows).unwrap()
}

fn assert_all_agree(r: &Relation, k: usize) {
    let ctane = Ctane::new(k).discover(r);
    let fast = FastCfd::new(k).discover(r);
    let naive = FastCfd::naive(k).discover(r);
    assert_eq!(ctane.cfds(), fast.cfds(), "ctane vs fastcfd");
    assert_eq!(naive.cfds(), fast.cfds(), "naive vs fastcfd");
    assert!(audit_cover(r, fast.iter(), k).is_empty());
}

#[test]
fn empty_relation() {
    let schema = Schema::new(["A", "B"]).unwrap();
    let r = RelationBuilder::new(schema).finish();
    assert_eq!(r.n_rows(), 0);
    assert!(FastCfd::new(1).discover(&r).is_empty());
    assert!(Ctane::new(1).discover(&r).is_empty());
    assert!(CfdMiner::new(1).discover(&r).is_empty());
    assert!(Tane::new().discover(&r).is_empty());
    assert!(FastFd::new().discover(&r).is_empty());
}

#[test]
fn single_tuple() {
    let r = rel_of(&[vec!["x", "y", "z"]], &["A", "B", "C"]);
    assert_all_agree(&r, 1);
    let cover = FastCfd::new(1).discover(&r);
    // exactly the three constant CFDs (∅ → X, (‖ v)); nothing variable
    assert_eq!(cover.counts(), (3, 0), "{}", cover.display(&r));
}

#[test]
fn single_attribute() {
    let r = rel_of(&[vec!["x"], vec!["x"], vec!["y"]], &["A"]);
    assert_all_agree(&r, 1);
    let cover = FastCfd::new(1).discover(&r);
    // no LHS attributes exist, A is not constant ⇒ empty cover
    assert!(cover.is_empty());
    // but with identical rows it is the constant rule
    let c = rel_of(&[vec!["x"], vec!["x"]], &["A"]);
    let cover = FastCfd::new(1).discover(&c);
    assert_eq!(cover.counts(), (1, 0));
}

#[test]
fn all_rows_identical() {
    let r = rel_of(
        &[vec!["x", "y"], vec!["x", "y"], vec!["x", "y"]],
        &["A", "B"],
    );
    assert_all_agree(&r, 1);
    assert_all_agree(&r, 3);
    let cover = FastCfd::new(3).discover(&r);
    // both columns constant: two empty-LHS constant CFDs, no variable CFDs
    assert_eq!(cover.counts(), (2, 0), "{}", cover.display(&r));
}

#[test]
fn duplicated_column() {
    // B is a copy of A: A → B and B → A, plus value-level rules
    let r = rel_of(
        &[
            vec!["x", "x", "1"],
            vec!["y", "y", "2"],
            vec!["x", "x", "3"],
            vec!["z", "z", "1"],
        ],
        &["A", "B", "C"],
    );
    assert_all_agree(&r, 1);
    let fds = Tane::new().discover(&r);
    let a = 0;
    let b = 1;
    assert!(fds.contains(&Cfd::fd(AttrSet::singleton(a), b)));
    assert!(fds.contains(&Cfd::fd(AttrSet::singleton(b), a)));
}

#[test]
fn key_column() {
    // C is a key: C → A, C → B are minimal FDs
    let r = rel_of(
        &[
            vec!["x", "p", "1"],
            vec!["x", "q", "2"],
            vec!["y", "p", "3"],
            vec!["y", "q", "4"],
        ],
        &["A", "B", "C"],
    );
    assert_all_agree(&r, 1);
    let cover = FastCfd::new(1).discover(&r);
    assert!(cover.contains(&Cfd::fd(AttrSet::singleton(2), 0)));
    assert!(cover.contains(&Cfd::fd(AttrSet::singleton(2), 1)));
}

#[test]
fn k_equal_to_relation_size() {
    let r = rel_of(
        &[vec!["x", "1"], vec!["x", "1"], vec!["x", "2"]],
        &["A", "B"],
    );
    assert_all_agree(&r, 3);
    let cover = FastCfd::new(3).discover(&r);
    // only the pattern (A=x) reaches support 3; B varies ⇒ only (∅→A,(‖x))
    assert_eq!(cover.counts(), (1, 0), "{}", cover.display(&r));
    // k beyond |r| ⇒ nothing
    assert!(FastCfd::new(4).discover(&r).is_empty());
    assert!(Ctane::new(4).discover(&r).is_empty());
}

#[test]
fn binary_matrix_relation() {
    // adversarial: 6 boolean columns, half the rows complement the other
    let rows: Vec<Vec<String>> = (0..16u32)
        .map(|i| (0..6).map(|b| ((i >> (b % 4)) & 1).to_string()).collect())
        .collect();
    let rows_ref: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let r = rel_of(&rows_ref, &["b0", "b1", "b2", "b3", "b4", "b5"]);
    for k in [1, 2, 4] {
        assert_all_agree(&r, k);
    }
    // b4 = b0 and b5 = b1 by construction (bit index mod 4)
    let fds = FastFd::new().discover(&r);
    assert!(fds.contains(&Cfd::fd(AttrSet::singleton(0), 4)));
    assert!(fds.contains(&Cfd::fd(AttrSet::singleton(5), 1)));
}

#[test]
fn free_set_pruning_ablation_is_pure_optimization() {
    let r = cfd_suite::datagen::tax::TaxGenerator::new(400).generate();
    for k in [2, 4] {
        let with = FastCfd::new(k).discover(&r);
        let without = FastCfd::new(k).free_set_pruning(false).discover(&r);
        assert_eq!(with.cfds(), without.cfds(), "k={k}");
    }
    // and on adversarial random data
    for seed in 0..6 {
        let r = cfd_suite::datagen::random::RandomRelation::small(seed).generate();
        let with = FastCfd::new(1).discover(&r);
        let without = FastCfd::new(1).free_set_pruning(false).discover(&r);
        assert_eq!(with.cfds(), without.cfds(), "seed={seed}");
    }
}

#[test]
fn max_lhs_is_a_prefix_of_the_cover() {
    let r = cfd_suite::datagen::cust::cust_relation();
    let full = Ctane::new(2).discover(&r);
    let capped = Ctane::new(2).max_lhs(2).discover(&r);
    // capped = exactly the full-cover rules with LHS ≤ 2
    let expect: Vec<_> = full
        .iter()
        .filter(|c| c.lhs_attrs().len() <= 2)
        .cloned()
        .collect();
    assert_eq!(capped.cfds(), CanonicalCover::from_cfds(expect).cfds());
}

#[test]
fn unicode_values_survive_the_pipeline() {
    let r = rel_of(
        &[
            vec!["東京", "日本", "π≈3.14"],
            vec!["東京", "日本", "π≈3.14"],
            vec!["Zürich", "Schweiz", "έψιλον"],
        ],
        &["city", "country", "note"],
    );
    assert_all_agree(&r, 1);
    let cover = FastCfd::new(2).discover(&r);
    let rule = parse_cfd(&r, "(city -> country, (東京 || 日本))").unwrap();
    assert!(cover.contains(&rule), "{}", cover.display(&r));
    // display round-trips through the dictionaries
    assert!(rule.display(&r).contains("東京"));
}

#[test]
fn parallel_findcover_equals_serial() {
    let r = cfd_suite::datagen::tax::TaxGenerator::new(500).generate();
    for k in [2, 5] {
        let serial = FastCfd::new(k).discover(&r);
        let parallel = FastCfd::new(k).threads(4).discover(&r);
        assert_eq!(serial.cfds(), parallel.cfds(), "k={k}");
    }
    for seed in 0..4 {
        let r = cfd_suite::datagen::random::RandomRelation::small(seed).generate();
        let serial = FastCfd::new(1).discover(&r);
        let parallel = FastCfd::new(1).threads(3).discover(&r);
        assert_eq!(serial.cfds(), parallel.cfds(), "seed={seed}");
    }
}

#[test]
fn tableau_grouping_through_the_public_api() {
    use cfd_suite::model::tableau::group_into_tableaux;
    let r = cfd_suite::datagen::cust::cust_relation();
    let cover = FastCfd::new(2).discover(&r);
    let tableaux = group_into_tableaux(&cover);
    // fewer tableaux than single-pattern rules (grouping compresses)
    assert!(tableaux.len() < cover.len());
    // every tableau holds and its rows sum back to the cover
    let total_rows: usize = tableaux.iter().map(|t| t.rows().len()).sum();
    assert_eq!(total_rows, cover.len());
    for t in &tableaux {
        assert!(t.satisfied_by(&r), "{}", t.display(&r));
        assert!(t.support(&r) >= 2);
    }
}
