//! Inverted index over closed item sets.
//!
//! FastCFD (Section 5.5) derives the difference sets of `r_tp` from the
//! 2-frequent closed item sets that *match* the constant pattern `tp`:
//! the maximal pairwise agree sets of `r_tp` are exactly the maximal
//! closed sets containing `(X, tp)` (closedness guarantees each candidate
//! complement is realized by an actual tuple pair — see DESIGN.md §2).
//! This index answers "which closed sets contain pattern `p`?" by
//! intersecting per-item posting lists.

use crate::mine::Mined;
use cfd_model::attrset::AttrSet;
use cfd_model::fxhash::FxHashMap;
use cfd_model::pattern::Pattern;

/// Inverted index: item `(attr, code)` → indices of the closed sets whose
/// pattern contains the item.
pub struct ClosedSetIndex {
    /// Attribute sets of the indexed closed sets (what difference-set
    /// computation consumes).
    attr_sets: Vec<AttrSet>,
    patterns: Vec<Pattern>,
    postings: FxHashMap<(usize, u32), Vec<u32>>,
}

impl ClosedSetIndex {
    /// Builds the index over the closed sets of a mining result
    /// (typically mined with `k = 2`).
    pub fn build(mined: &Mined) -> ClosedSetIndex {
        let mut postings: FxHashMap<(usize, u32), Vec<u32>> = FxHashMap::default();
        let mut attr_sets = Vec::with_capacity(mined.closed.len());
        let mut patterns = Vec::with_capacity(mined.closed.len());
        for (i, c) in mined.closed.iter().enumerate() {
            attr_sets.push(c.pattern.attrs());
            patterns.push(c.pattern.clone());
            for (a, v) in c.pattern.iter() {
                let code = v.as_const().expect("closed sets are all-constant");
                postings.entry((a, code)).or_default().push(i as u32);
            }
        }
        ClosedSetIndex {
            attr_sets,
            patterns,
            postings,
        }
    }

    /// Number of indexed closed sets.
    pub fn len(&self) -> usize {
        self.attr_sets.len()
    }

    /// True iff no closed set is indexed.
    pub fn is_empty(&self) -> bool {
        self.attr_sets.is_empty()
    }

    /// The attribute set of closed set `i`.
    pub fn attrs(&self, i: usize) -> AttrSet {
        self.attr_sets[i]
    }

    /// The pattern of closed set `i`.
    pub fn pattern(&self, i: usize) -> &Pattern {
        &self.patterns[i]
    }

    /// Indices of the closed sets whose pattern contains `p` (an
    /// all-constant pattern). The empty pattern matches every closed set.
    pub fn containing(&self, p: &Pattern) -> Vec<u32> {
        debug_assert!(p.is_all_const());
        let mut lists: Vec<&[u32]> = Vec::with_capacity(p.len());
        for (a, v) in p.iter() {
            let code = v.as_const().expect("query patterns are all-constant");
            match self.postings.get(&(a, code)) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        if lists.is_empty() {
            return (0..self.len() as u32).collect();
        }
        // intersect smallest-first
        lists.sort_unstable_by_key(|l| l.len());
        let mut acc: Vec<u32> = lists[0].to_vec();
        for l in &lists[1..] {
            let mut out = Vec::with_capacity(acc.len().min(l.len()));
            let (mut i, mut j) = (0, 0);
            while i < acc.len() && j < l.len() {
                match acc[i].cmp(&l[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(acc[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            acc = out;
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// The attribute sets of the closed sets containing `p` — the agree
    /// sets FastCFD complements into difference sets.
    pub fn agree_attr_sets(&self, p: &Pattern) -> Vec<AttrSet> {
        self.containing(p)
            .into_iter()
            .map(|i| self.attr_sets[i as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::{mine_free_closed, MineOptions};
    use cfd_model::pattern::PVal;
    use cfd_model::relation::{relation_from_rows, Relation};
    use cfd_model::schema::Schema;

    fn cust() -> Relation {
        let schema = Schema::new(["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"]).unwrap();
        relation_from_rows(
            schema,
            &[
                vec!["01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"],
                vec!["01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"],
                vec!["01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"],
                vec!["01", "908", "2222222", "Jim", "Elm Str.", "MH", "07974"],
                vec!["44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"],
                vec!["44", "131", "2222222", "Ian", "High St.", "EDI", "EH4 1DT"],
                vec!["44", "908", "2222222", "Ian", "Port PI", "MH", "W1B 1JH"],
                vec!["01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"],
            ],
        )
        .unwrap()
    }

    fn pat(rel: &Relation, items: &[(&str, &str)]) -> Pattern {
        Pattern::from_pairs(items.iter().map(|&(a, v)| {
            let aid = rel.schema().attr_id(a).unwrap();
            let code = rel.column(aid).dict().code(v).unwrap();
            (aid, PVal::Const(code))
        }))
    }

    #[test]
    fn containing_matches_linear_scan() {
        let r = cust();
        let mined = mine_free_closed(&r, 2, MineOptions::default());
        let idx = ClosedSetIndex::build(&mined);
        assert_eq!(idx.len(), mined.closed.len());

        let queries = [
            Pattern::empty(),
            pat(&r, &[("CC", "01")]),
            pat(&r, &[("CC", "44")]),
            pat(&r, &[("CC", "01"), ("AC", "908")]),
            pat(&r, &[("AC", "212")]),
        ];
        for q in &queries {
            let got: std::collections::BTreeSet<u32> = idx.containing(q).into_iter().collect();
            let want: std::collections::BTreeSet<u32> = mined
                .closed
                .iter()
                .enumerate()
                .filter(|(_, c)| c.pattern.contains_pattern(q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn unknown_item_yields_nothing() {
        let r = cust();
        let mined = mine_free_closed(&r, 2, MineOptions::default());
        let idx = ClosedSetIndex::build(&mined);
        // AC=212 has support 1, so no 2-frequent closed set contains it
        let q = pat(&r, &[("AC", "212")]);
        assert!(idx.containing(&q).is_empty());
    }

    #[test]
    fn agree_attr_sets_are_attr_projections() {
        let r = cust();
        let mined = mine_free_closed(&r, 2, MineOptions::default());
        let idx = ClosedSetIndex::build(&mined);
        let q = pat(&r, &[("CC", "44")]);
        let agree = idx.agree_attr_sets(&q);
        assert!(!agree.is_empty());
        let cc = r.schema().attr_id("CC").unwrap();
        assert!(agree.iter().all(|s| s.contains(cc)));
    }
}
