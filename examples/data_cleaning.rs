//! Data cleaning with discovered CFDs — the paper's motivating scenario
//! (Section 1): learn rules from a clean sample, then use them to locate
//! inconsistencies in dirty data.
//!
//! ```sh
//! cargo run --release --example data_cleaning
//! ```

use cfd_suite::datagen::noise::inject_noise;
use cfd_suite::datagen::tax::TaxGenerator;
use cfd_suite::prelude::*;

fn main() {
    // a clean sample of tax records (the synthetic workload of Section 6)
    let clean = TaxGenerator::new(2_000).seed(7).generate();
    println!(
        "clean sample: {} tuples × {} attributes",
        clean.n_rows(),
        clean.arity()
    );

    // discover cleaning rules at a support threshold that filters noise
    let k = 20;
    let discovery = Algo::FastCfd
        .discover_with(&clean, &DiscoverOptions::new(k), &Control::default())
        .unwrap();
    let rules = discovery.cover.clone();
    let (n_const, n_var) = rules.counts();
    println!(
        "discovered {} rules ({n_const} constant, {n_var} variable) at k = {k} in {:.2?}",
        rules.len(),
        discovery.total_time(),
    );
    for cfd in rules.iter().take(8) {
        println!("  {}", cfd.display(&clean));
    }
    if rules.len() > 8 {
        println!("  … {} more", rules.len() - 8);
    }

    // corrupt 0.5% of the cells
    let (dirty, corrupted) = inject_noise(&clean, 0.005, 42);
    println!("\ninjected {} cell errors", corrupted.len());

    // detect violations
    let found = detect_violations(&dirty, rules.cfds());
    println!("rules flag {} violations", found.len());

    // score: how many corrupted tuples are implicated?
    let corrupted_tuples: std::collections::HashSet<u32> =
        corrupted.iter().map(|&(t, _)| t).collect();
    let implicated: std::collections::HashSet<u32> = found
        .iter()
        .flat_map(|&(_, v)| match v {
            Violation::Single(t) => vec![t],
            Violation::Pair(t1, t2) => vec![t1, t2],
        })
        .collect();
    let caught = corrupted_tuples.intersection(&implicated).count();
    println!(
        "{caught}/{} corrupted tuples implicated by at least one rule \
         (recall {:.0}%)",
        corrupted_tuples.len(),
        100.0 * caught as f64 / corrupted_tuples.len().max(1) as f64
    );

    // show a few concrete findings
    for &(rule, v) in found.iter().take(5) {
        match v {
            Violation::Single(t) => println!(
                "  tuple {t} violates {}",
                rules.cfds()[rule].display(&dirty)
            ),
            Violation::Pair(t1, t2) => println!(
                "  tuples {t1}/{t2} violate {}",
                rules.cfds()[rule].display(&dirty)
            ),
        }
    }

    // suggest and apply repairs, then re-check (cover-level repair and
    // detection both run through the shared validation kernel)
    use cfd_suite::model::repair::apply_repairs;
    let repairs = suggest_repairs_for_cover(&dirty, rules.cfds());
    let fixed = apply_repairs(&dirty, &repairs);
    let correct = repairs
        .iter()
        .filter(|r| fixed.value(r.tuple, r.attr) == clean.value(r.tuple, r.attr))
        .count();
    let remaining = detect_violations(&fixed, rules.cfds()).len();
    println!(
        "\nrepair pass: {} cell edits suggested, {correct} restore the original \
         value exactly; {remaining} violations remain (was {})",
        repairs.len(),
        found.len()
    );
}
