//! Equivalence-class partitions w.r.t. `(X, sp)` pairs.

use crate::index::{RelationIndex, ValueIndex};
use cfd_model::fxhash::FxHashMap;
use cfd_model::pattern::PVal;
use cfd_model::relation::{Relation, TupleId};
use cfd_model::schema::AttrId;

/// A partition of (a subset of) the tuples of a relation.
///
/// Classes are stored back to back in `tuples`; class `i` spans
/// `tuples[offsets[i] .. offsets[i+1]]`. Classes are never empty. Unlike
/// TANE's *stripped* partitions, singleton classes are kept: CTANE needs
/// both the exact class count (validity of variable-RHS CFDs) and the
/// exact row count (validity of constant-RHS CFDs and k-frequency), and
/// both would be lost by stripping. Stripping is available separately for
/// the FastFD-style agree-set computation.
#[derive(Clone, Debug)]
pub struct Partition {
    tuples: Vec<TupleId>,
    offsets: Vec<u32>,
}

impl Partition {
    /// Builds a partition from grouped tuples and offsets. `offsets` must
    /// start at 0, end at `tuples.len()`, and be strictly increasing.
    pub fn from_parts(tuples: Vec<TupleId>, offsets: Vec<u32>) -> Partition {
        debug_assert!(offsets.first() == Some(&0) || (offsets.is_empty() && tuples.is_empty()));
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, tuples.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] < w[1]));
        Partition { tuples, offsets }
    }

    /// The partition w.r.t. `(∅, ())`: a single class holding every tuple
    /// (or no class at all for an empty relation).
    pub fn full(n_rows: usize) -> Partition {
        if n_rows == 0 {
            return Partition {
                tuples: Vec::new(),
                offsets: vec![0],
            };
        }
        Partition {
            tuples: (0..n_rows as TupleId).collect(),
            offsets: vec![0, n_rows as u32],
        }
    }

    /// The partition w.r.t. `({A}, (_))`: one class per active-domain
    /// value of `A`. One counting sort — the same pass that builds a
    /// [`ValueIndex`], which this delegates to.
    pub fn by_attribute(rel: &Relation, a: AttrId) -> Partition {
        ValueIndex::build(rel, a).to_partition()
    }

    /// The partition w.r.t. `({A}, (c))`: a single class holding the
    /// tuples with `t[A] = c` (no class when none matches).
    ///
    /// Builds the column's counting-sort value regions and extracts the
    /// region of `code`; callers doing *repeated* constant lookups
    /// should build the index once ([`crate::RelationIndex`], or
    /// [`ValueIndex::build`] directly) and use
    /// [`by_constant_in`](Partition::by_constant_in), which is
    /// O(region) per lookup.
    pub fn by_constant(rel: &Relation, a: AttrId, code: u32) -> Partition {
        ValueIndex::build(rel, a).constant_partition(code)
    }

    /// [`by_constant`](Partition::by_constant) against a pre-built
    /// column index: O(region), no relation scan.
    pub fn by_constant_in(idx: &ValueIndex, code: u32) -> Partition {
        idx.constant_partition(code)
    }

    /// Number of equivalence classes.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of tuples across all classes — i.e. the number of tuples
    /// matching the constant part of the pattern (the pattern's support).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.tuples.len()
    }

    /// The tuples of class `i`.
    #[inline]
    pub fn class(&self, i: usize) -> &[TupleId] {
        &self.tuples[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates over the classes.
    pub fn classes(&self) -> impl Iterator<Item = &[TupleId]> {
        self.offsets
            .windows(2)
            .map(move |w| &self.tuples[w[0] as usize..w[1] as usize])
    }

    /// All member tuples (grouped by class).
    pub fn rows(&self) -> &[TupleId] {
        &self.tuples
    }

    /// Refines by one attribute: computes the partition w.r.t.
    /// `(X ∪ {B}, (sp, v))` from the partition w.r.t. `(X, sp)`.
    ///
    /// * `v = Const(c)` keeps, per class, only the tuples with `t[B] = c`
    ///   (one sub-class per class, possibly dropped);
    /// * `v = Var` splits each class by the code of `B`.
    pub fn refine(&self, rel: &Relation, b: AttrId, v: PVal) -> Partition {
        let col = rel.column(b);
        let mut tuples = Vec::with_capacity(self.tuples.len());
        let mut offsets = Vec::with_capacity(self.offsets.len());
        offsets.push(0u32);
        match v {
            PVal::Const(c) => {
                for class in self.classes() {
                    let before = tuples.len();
                    tuples.extend(class.iter().copied().filter(|&t| col.code(t) == c));
                    if tuples.len() > before {
                        offsets.push(tuples.len() as u32);
                    }
                }
            }
            PVal::Var => {
                let mut groups: FxHashMap<u32, Vec<TupleId>> = FxHashMap::default();
                for class in self.classes() {
                    if class.len() == 1 {
                        // a singleton stays a singleton under refinement
                        tuples.push(class[0]);
                        offsets.push(tuples.len() as u32);
                        continue;
                    }
                    groups.clear();
                    for &t in class {
                        groups.entry(col.code(t)).or_default().push(t);
                    }
                    // drain in deterministic order for reproducible layouts
                    let mut keys: Vec<u32> = groups.keys().copied().collect();
                    keys.sort_unstable();
                    for k in keys {
                        let g = &groups[&k];
                        tuples.extend_from_slice(g);
                        offsets.push(tuples.len() as u32);
                    }
                }
            }
        }
        Partition { tuples, offsets }
    }

    /// [`refine`](Partition::refine) against a cached column index.
    ///
    /// Wildcard refinement is unchanged, but constant refinement stops
    /// testing every member of every class: the index's value region for
    /// `c` lists exactly the tuples carrying `c`, so each class is
    /// intersected with the (ascending) region window overlapping it —
    /// per class, whichever of "scan the class" and "probe the window"
    /// is cheaper. When the constant is selective (the common case for
    /// k-frequent constant patterns on skewed columns), refinement cost
    /// drops from O(class members) to O(matches · log).
    pub fn refine_with(
        &self,
        rel: &Relation,
        idx: &RelationIndex,
        b: AttrId,
        v: PVal,
    ) -> Partition {
        let c = match v {
            PVal::Var => return self.refine(rel, b, v),
            PVal::Const(c) => c,
        };
        let region = idx.column(rel, b).region(c);
        if region.is_empty() {
            return Partition {
                tuples: Vec::new(),
                offsets: vec![0],
            };
        }
        let col = rel.column(b);
        let log_region = (usize::BITS - region.len().leading_zeros()) as usize;
        let mut tuples = Vec::new();
        let mut offsets = vec![0u32];
        for class in self.classes() {
            debug_assert!(class.windows(2).all(|w| w[0] < w[1]));
            let before = tuples.len();
            // a class smaller than the cost of locating its region
            // window is cheapest to filter directly
            if class.len() <= 2 * log_region {
                tuples.extend(class.iter().copied().filter(|&t| col.code(t) == c));
            } else {
                // the region members that could fall in this class
                let lo = region.partition_point(|&t| t < class[0]);
                let hi = region.partition_point(|&t| t <= *class.last().unwrap());
                let window = &region[lo..hi];
                // probe the smaller side: window members against the
                // class, or class members against the column
                let log_class = (usize::BITS - class.len().leading_zeros()) as usize;
                if window.len() * log_class < class.len() {
                    for &t in window {
                        if class.binary_search(&t).is_ok() {
                            tuples.push(t);
                        }
                    }
                } else {
                    tuples.extend(class.iter().copied().filter(|&t| col.code(t) == c));
                }
            }
            if tuples.len() > before {
                offsets.push(tuples.len() as u32);
            }
        }
        Partition { tuples, offsets }
    }

    /// The g1-style *keep count* w.r.t. a candidate RHS attribute: the
    /// sum over classes of the highest frequency of any single `a`-code
    /// inside the class — i.e. the maximum number of member tuples that
    /// can be kept such that every class agrees on `a`.
    ///
    /// `keep_count == n_rows` iff the partition refines `a` exactly
    /// (the classical validity test); the gap `n_rows − keep_count` is
    /// the partition error `e(X → A)` approximate CTANE/TANE threshold
    /// against `θ` (see DESIGN.md §8), and equals the minimal-removal
    /// violation count `cfd_model::measure` reports for the rule.
    pub fn keep_count(&self, rel: &Relation, a: AttrId) -> usize {
        let col = rel.column(a);
        let mut freq: FxHashMap<u32, u32> = FxHashMap::default();
        let mut keep = 0usize;
        for class in self.classes() {
            if class.len() == 1 {
                keep += 1;
                continue;
            }
            freq.clear();
            let mut best = 0u32;
            for &t in class {
                let count = freq.entry(col.code(t)).or_insert(0);
                *count += 1;
                best = best.max(*count);
            }
            keep += best as usize;
        }
        keep
    }

    /// The stripped version: singleton classes removed (TANE/FastFD's
    /// representation; agree-set computation only looks at classes of
    /// size ≥ 2).
    pub fn stripped(&self) -> Partition {
        let mut tuples = Vec::new();
        let mut offsets = vec![0u32];
        for class in self.classes() {
            if class.len() >= 2 {
                tuples.extend_from_slice(class);
                offsets.push(tuples.len() as u32);
            }
        }
        Partition { tuples, offsets }
    }

    /// True iff every class is a singleton (i.e. `X` is a key for the
    /// matching sub-instance).
    pub fn is_unique(&self) -> bool {
        self.n_classes() == self.n_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_model::relation::relation_from_rows;
    use cfd_model::schema::Schema;

    fn rel() -> Relation {
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        relation_from_rows(
            schema,
            &[
                vec!["x", "1", "p"], // t0
                vec!["x", "2", "p"], // t1
                vec!["y", "1", "q"], // t2
                vec!["x", "1", "q"], // t3
                vec!["y", "2", "p"], // t4
            ],
        )
        .unwrap()
    }

    fn sorted_classes(p: &Partition) -> Vec<Vec<TupleId>> {
        let mut cs: Vec<Vec<TupleId>> = p
            .classes()
            .map(|c| {
                let mut v = c.to_vec();
                v.sort_unstable();
                v
            })
            .collect();
        cs.sort();
        cs
    }

    #[test]
    fn full_partition() {
        let p = Partition::full(4);
        assert_eq!(p.n_classes(), 1);
        assert_eq!(p.n_rows(), 4);
        assert_eq!(p.class(0), &[0, 1, 2, 3]);
        let e = Partition::full(0);
        assert_eq!(e.n_classes(), 0);
        assert_eq!(e.n_rows(), 0);
    }

    #[test]
    fn by_attribute_groups_by_value() {
        let r = rel();
        let p = Partition::by_attribute(&r, 0);
        assert_eq!(p.n_classes(), 2);
        assert_eq!(p.n_rows(), 5);
        assert_eq!(sorted_classes(&p), vec![vec![0, 1, 3], vec![2, 4]]);
    }

    #[test]
    fn by_constant_filters() {
        let r = rel();
        let x = r.column(0).dict().code("x").unwrap();
        let p = Partition::by_constant(&r, 0, x);
        assert_eq!(p.n_classes(), 1);
        assert_eq!(p.class(0), &[0, 1, 3]);
        // no matching tuple ⇒ empty partition
        let none = Partition::by_constant(&r, 0, 999);
        assert_eq!(none.n_classes(), 0);
        assert_eq!(none.n_rows(), 0);
    }

    #[test]
    fn refine_by_wildcard() {
        let r = rel();
        // π(A,_) refined by B,_ = π([A,B], (_,_))
        let p = Partition::by_attribute(&r, 0).refine(&r, 1, PVal::Var);
        assert_eq!(p.n_rows(), 5);
        assert_eq!(
            sorted_classes(&p),
            vec![vec![0, 3], vec![1], vec![2], vec![4]]
        );
    }

    #[test]
    fn refine_by_constant() {
        let r = rel();
        let b1 = r.column(1).dict().code("1").unwrap();
        // π(A,_) refined by B=1 = π([A,B], (_,1))
        let p = Partition::by_attribute(&r, 0).refine(&r, 1, PVal::Const(b1));
        assert_eq!(p.n_rows(), 3);
        assert_eq!(sorted_classes(&p), vec![vec![0, 3], vec![2]]);
    }

    #[test]
    fn refinement_matches_direct_construction() {
        let r = rel();
        // π([A,B,C], (_,_,_)) via two refinement orders must agree on the
        // class structure
        let p1 = Partition::by_attribute(&r, 0)
            .refine(&r, 1, PVal::Var)
            .refine(&r, 2, PVal::Var);
        let p2 = Partition::by_attribute(&r, 2)
            .refine(&r, 0, PVal::Var)
            .refine(&r, 1, PVal::Var);
        assert_eq!(sorted_classes(&p1), sorted_classes(&p2));
        assert_eq!(p1.n_classes(), 5); // all rows distinct on (A,B,C)
        assert!(p1.is_unique());
    }

    #[test]
    fn keep_count_sums_per_class_majorities() {
        let r = rel();
        // π(A): class {t0,t1,t3} (A=x) has C-codes p,p,q → keep 2;
        // class {t2,t4} (A=y) has q,p → keep 1
        let p = Partition::by_attribute(&r, 0);
        assert_eq!(p.keep_count(&r, 2), 3);
        // exact refinement ⇔ keep_count == n_rows: grouping by C itself
        let by_c = Partition::by_attribute(&r, 2);
        assert_eq!(by_c.keep_count(&r, 2), by_c.n_rows());
        // singleton classes always keep their one tuple
        let fine = Partition::by_attribute(&r, 0)
            .refine(&r, 1, PVal::Var)
            .refine(&r, 2, PVal::Var);
        assert_eq!(fine.keep_count(&r, 1), fine.n_rows());
    }

    #[test]
    fn stripped_drops_singletons() {
        let r = rel();
        let p = Partition::by_attribute(&r, 0).refine(&r, 1, PVal::Var);
        let s = p.stripped();
        assert_eq!(s.n_classes(), 1);
        assert_eq!(sorted_classes(&s), vec![vec![0, 3]]);
    }

    #[test]
    fn counting_sort_layout_is_consistent() {
        // regression guard for the dense-domain counting sort
        let schema = Schema::new(["A"]).unwrap();
        let r = relation_from_rows(
            schema,
            &[
                vec!["c"],
                vec!["a"],
                vec!["b"],
                vec!["a"],
                vec!["c"],
                vec!["c"],
            ],
        )
        .unwrap();
        let p = Partition::by_attribute(&r, 0);
        assert_eq!(p.n_classes(), 3);
        assert_eq!(p.n_rows(), 6);
        assert_eq!(sorted_classes(&p), vec![vec![0, 4, 5], vec![1, 3], vec![2]]);
    }
}
