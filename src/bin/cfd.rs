//! `cfd` — command-line CFD discovery and data validation.
//!
//! ```text
//! cfd discover <data.csv> [--k N] [--algo NAME] [--max-lhs N] [--threads N]
//!              [--min-confidence F] [--top-k N] [--constants-only]
//!              [--project A,B,...] [--tableau] [--format text|json]
//! cfd check    <data.csv> <rules.txt> [--limit N] [--threads N] [--lenient]
//!              [--format text|json]
//! cfd repair   <data.csv> <rules.txt> <out.csv> [--lenient]
//! cfd stats    <data.csv>
//! cfd watch    <initial.csv> <rules.txt> [--shards N] [--lenient]
//! cfd serve    [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!              [--registry-budget-mb N] [--max-line-kb N] [--job-timeout-ms N]
//!              [--io-timeout-ms N] [--idle-ms N] [--faults]
//! cfd client   <HOST:PORT> [--io-timeout-ms N] [--retries N] [--backoff-ms N]
//! cfd algos
//! ```
//!
//! Every algorithm runs through the unified `Discoverer` API
//! (`cfd_core::api`): `--algo` names resolve via the `Algo` registry
//! (`cfd algos` lists them), options an algorithm ignores surface as
//! structured notes (stderr warnings in text mode, a `notes` array in
//! JSON), and `--format json` emits the full machine-readable
//! `Discovery` / `ValidationReport` documents.
//!
//! `discover` prints one rule per line in the stable wire-format — the
//! same syntax `check` parses back, so the two commands compose:
//!
//! ```sh
//! cfd discover clean.csv --k 20 > rules.txt
//! cfd check dirty.csv rules.txt
//! ```
//!
//! `--min-confidence θ` switches ctane/tane/cfdminer to *approximate*
//! discovery: rules are emitted when their g1-style confidence reaches
//! θ rather than only at exactness, and `--top-k N` keeps the N best
//! rules by (confidence, support) with any algorithm. Approximate and
//! top-k runs print each rule with its measured `[support=N conf=F]`
//! suffix; `check`, `repair` and `watch` accept (and ignore) the
//! annotations, so the pipeline above still composes.
//!
//! Rule files are strict by default: an unparseable line aborts the
//! command (a truncated rule set silently turning `check` green is
//! worse than an error). Pass `--lenient` to skip bad lines with a
//! warning instead.
//!
//! `watch` keeps checking as the data changes: it warms the incremental
//! engine on the initial CSV, then reads a stream of operations from
//! stdin — one CSV row (optionally prefixed `+`) per insert, `-<id>`
//! per delete, an empty line (or `.`) to apply the pending batch — and
//! prints the violation deltas (`RAISED` / `CLEARED` lines), a `BATCH`
//! summary per applied batch, and per-rule statistics instead of
//! rescanning. At stdin EOF any staged operations are applied and the
//! final statistics are flushed before exiting:
//!
//! ```sh
//! cfd discover clean.csv --k 20 > rules.txt
//! tail -f updates.log | cfd watch clean.csv rules.txt --shards 4
//! ```
//!
//! `serve` keeps datasets resident and answers many clients over one
//! process: register a CSV once, then submit discover/check/repair
//! jobs, stream their progress, cancel them by id, and read server
//! stats — newline-delimited JSON over TCP (grammar in DESIGN.md §12).
//! `client` is the matching scripted client:
//!
//! ```sh
//! cfd serve --addr 127.0.0.1:4617 &
//! cfd client 127.0.0.1:4617 <<'EOF'
//! {"op": "register", "name": "tax", "path": "tax.csv"}
//! {"op": "discover", "dataset": "tax", "algo": "ctane", "sync": true}
//! {"op": "shutdown"}
//! EOF
//! ```

use cfd_suite::model::csv::relation_from_csv_path;
use cfd_suite::model::tableau::group_into_tableaux;
use cfd_suite::prelude::*;
use cfd_suite::serve::session::{attach_rule_texts, load_rules_file_with, ObsSession};
use cfd_suite::serve::{ServeOptions, Server};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         cfd discover <data.csv> [--k N] [--algo NAME] [--max-lhs N] [--threads N]\n\
         \x20              [--min-confidence F] [--top-k N] [--constants-only]\n\
         \x20              [--project A,B,...] [--tableau] [--format text|json]\n\
         \x20              [--trace] [--metrics-out FILE]\n  \
         cfd check <data.csv> <rules.txt> [--limit N] [--threads N] [--lenient] [--format text|json]\n\
         \x20           [--trace] [--metrics-out FILE]\n  \
         cfd repair <data.csv> <rules.txt> <out.csv> [--lenient]\n  \
         cfd stats <data.csv>\n  \
         cfd watch <initial.csv> <rules.txt> [--shards N] [--lenient] [--trace] [--metrics-out FILE]\n\
         \x20          [--remine] [--remine-theta F] [--remine-expand N] [--remine-timeout-ms N] [--threads N]\n  \
         cfd serve [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
         \x20          [--registry-budget-mb N] [--max-line-kb N] [--job-timeout-ms N]\n\
         \x20          [--io-timeout-ms N] [--idle-ms N] [--faults] [--trace] [--metrics-out FILE]\n  \
         cfd client <HOST:PORT> [--io-timeout-ms N] [--retries N] [--backoff-ms N]\n  \
         cfd algos\n\
         \n\
         algorithms (cfd algos): {}\n\
         (--threads parallelizes discovery with every algorithm — fastcfd/naive shard\n\
         \x20 FindCover, ctane/tane shard level expansion, cfdminer its mining pass —\n\
         \x20 and check; output is identical at any thread count;\n\
         \x20 --min-confidence mines approximate covers with ctane/tane/cfdminer;\n\
         \x20 rule files are strict — --lenient skips unparseable lines instead;\n\
         \x20 watch --remine re-mines drifted rules in place: when a rule's live\n\
         \x20 confidence drops below --remine-theta, its attribute neighborhood\n\
         \x20 (LHS u RHS plus --remine-expand extra attributes) is re-discovered\n\
         \x20 under theta and the cover is atomically repaired (REMINE lines);\n\
         \x20 serve hosts a dataset registry + job queue over newline-delimited JSON/TCP\n\
         \x20 (--job-timeout-ms caps each job, --io-timeout-ms/--idle-ms reap stalled or\n\
         \x20 idle connections, --faults unlocks the test-only inject op);\n\
         \x20 client pipes a scripted session to it in lockstep (stdin -> requests,\n\
         \x20 stdout <- replies; --retries/--backoff-ms retry transient overload errors,\n\
         \x20 --io-timeout-ms turns a silent server into a clean nonzero exit);\n\
         \x20 --trace prints a span-time summary to stderr, --metrics-out FILE\n\
         \x20 writes the run's counters/gauges/histograms as JSON)",
        Algo::all().map(|a| a.name()).join("|")
    );
    ExitCode::from(2)
}

/// A bad invocation: the offending flag/value, reported verbatim.
fn arg_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("(run `cfd` without arguments for usage)");
    ExitCode::from(2)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

/// One [`ObsSession`] per CLI invocation (`cfd serve` keeps one for
/// the whole server lifetime instead; see `cfd_serve::session`).
fn obs_session(a: &Args) -> ObsSession {
    ObsSession::start(a.trace, a.metrics_out.clone())
}

struct Args {
    positional: Vec<String>,
    k: usize,
    algo: Algo,
    max_lhs: Option<usize>,
    threads: usize,
    constants_only: bool,
    project: Option<String>,
    tableau: bool,
    limit: usize,
    shards: usize,
    lenient: bool,
    format: Format,
    min_confidence: f64,
    top_k: Option<usize>,
    remine: bool,
    remine_theta: f64,
    remine_expand: usize,
    trace: bool,
    metrics_out: Option<String>,
    addr: String,
    workers: usize,
    queue_depth: usize,
    registry_budget_mb: usize,
    max_line_kb: usize,
    job_timeout_ms: u64,
    io_timeout_ms: u64,
    idle_ms: u64,
    faults: bool,
    retries: usize,
    backoff_ms: u64,
    remine_timeout_ms: u64,
}

/// Parses flags, reporting the offending flag/value on failure (the
/// caller exits 2 with the message).
fn parse_args(argv: &[String]) -> std::result::Result<Args, String> {
    let mut a = Args {
        positional: Vec::new(),
        k: 2,
        algo: Algo::FastCfd,
        max_lhs: None,
        threads: 1,
        constants_only: false,
        project: None,
        tableau: false,
        limit: 20,
        shards: 1,
        lenient: false,
        format: Format::Text,
        min_confidence: 1.0,
        top_k: None,
        remine: false,
        remine_theta: 0.95,
        remine_expand: 1,
        trace: false,
        metrics_out: None,
        addr: "127.0.0.1:4617".to_string(),
        workers: 2,
        queue_depth: 32,
        registry_budget_mb: 1024,
        max_line_kb: 64,
        job_timeout_ms: 0,
        io_timeout_ms: 0,
        idle_ms: 0,
        faults: false,
        retries: 0,
        backoff_ms: 250,
        remine_timeout_ms: 0,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        let number = |flag: &str, v: &str| {
            v.parse::<usize>().map_err(|_| {
                format!("invalid value {v:?} for {flag}: expected a non-negative integer")
            })
        };
        match arg.as_str() {
            "--k" => a.k = number("--k", value("--k")?)?,
            "--algo" => {
                let v = value("--algo")?;
                a.algo = Algo::parse(v).map_err(|e| e.to_string())?;
            }
            "--max-lhs" => a.max_lhs = Some(number("--max-lhs", value("--max-lhs")?)?),
            "--threads" => a.threads = number("--threads", value("--threads")?)?,
            "--min-confidence" => {
                let v = value("--min-confidence")?;
                a.min_confidence = v.parse::<f64>().map_err(|_| {
                    format!("invalid value {v:?} for --min-confidence: expected a number in (0, 1]")
                })?;
            }
            "--top-k" => a.top_k = Some(number("--top-k", value("--top-k")?)?),
            "--limit" => a.limit = number("--limit", value("--limit")?)?,
            "--shards" => a.shards = number("--shards", value("--shards")?)?,
            "--project" => a.project = Some(value("--project")?.clone()),
            "--format" => {
                a.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => {
                        return Err(format!(
                            "invalid value {other:?} for --format: expected \"text\" or \"json\""
                        ))
                    }
                }
            }
            "--addr" => a.addr = value("--addr")?.clone(),
            "--workers" => a.workers = number("--workers", value("--workers")?)?,
            "--queue-depth" => a.queue_depth = number("--queue-depth", value("--queue-depth")?)?,
            "--registry-budget-mb" => {
                a.registry_budget_mb =
                    number("--registry-budget-mb", value("--registry-budget-mb")?)?
            }
            "--max-line-kb" => a.max_line_kb = number("--max-line-kb", value("--max-line-kb")?)?,
            "--job-timeout-ms" => {
                a.job_timeout_ms = number("--job-timeout-ms", value("--job-timeout-ms")?)? as u64
            }
            "--io-timeout-ms" => {
                a.io_timeout_ms = number("--io-timeout-ms", value("--io-timeout-ms")?)? as u64
            }
            "--idle-ms" => a.idle_ms = number("--idle-ms", value("--idle-ms")?)? as u64,
            "--faults" => a.faults = true,
            "--retries" => a.retries = number("--retries", value("--retries")?)?,
            "--backoff-ms" => a.backoff_ms = number("--backoff-ms", value("--backoff-ms")?)? as u64,
            "--remine-timeout-ms" => {
                a.remine_timeout_ms =
                    number("--remine-timeout-ms", value("--remine-timeout-ms")?)? as u64
            }
            "--remine" => a.remine = true,
            "--remine-theta" => {
                let v = value("--remine-theta")?;
                a.remine_theta = v.parse::<f64>().map_err(|_| {
                    format!("invalid value {v:?} for --remine-theta: expected a number in (0, 1]")
                })?;
                if !(a.remine_theta > 0.0 && a.remine_theta <= 1.0) {
                    return Err(format!(
                        "invalid value {v:?} for --remine-theta: expected a number in (0, 1]"
                    ));
                }
            }
            "--remine-expand" => {
                a.remine_expand = number("--remine-expand", value("--remine-expand")?)?
            }
            "--constants-only" => a.constants_only = true,
            "--tableau" => a.tableau = true,
            "--lenient" => a.lenient = true,
            "--trace" => a.trace = true,
            "--metrics-out" => a.metrics_out = Some(value("--metrics-out")?.clone()),
            other if !other.starts_with('-') => a.positional.push(other.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(a)
}

fn discover(a: &Args) -> Result<ExitCode> {
    // flag-conflict check before the (possibly huge) CSV is parsed
    if a.tableau && a.format == Format::Json {
        return Ok(arg_error("--tableau conflicts with --format json"));
    }
    let obs = obs_session(a);
    let rel = obs.load_csv(&a.positional[0], a.threads)?;
    let mut opts = DiscoverOptions::new(a.k);
    opts.max_lhs = a.max_lhs;
    opts.threads = a.threads;
    opts.constants_only = a.constants_only;
    opts.min_confidence = a.min_confidence;
    opts.top_k = a.top_k;
    if let Some(names) = &a.project {
        let parts: Vec<&str> = names.split(',').map(str::trim).collect();
        match rel.schema().attr_set(&parts) {
            Ok(set) => opts.project = Some(set),
            // a bad attribute name is a usage error (exit 2), like
            // every other bad flag value
            Err(e) => {
                return Ok(arg_error(&format!(
                    "invalid value {names:?} for --project: {e}"
                )))
            }
        }
    }
    eprintln!(
        "# {}: {} tuples x {} attributes, k = {}, algo = {}",
        a.positional[0],
        rel.n_rows(),
        rel.arity(),
        a.k,
        a.algo,
    );
    let discovery = match a.algo.discover_with(&rel, &opts, &obs.control()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    obs.finish()?;
    // ignored options surface as structured notes; in text mode they
    // render as warnings, in JSON they ride along in the document
    for note in &discovery.notes {
        eprintln!("# warning: {note}");
    }
    let out_rel = discovery.relation(&rel);
    let (nc, nv) = discovery.cover.counts();
    eprintln!(
        "# {} rules ({nc} constant, {nv} variable) in {:.2?}",
        discovery.cover.len(),
        discovery.total_time(),
    );
    match a.format {
        Format::Json => {
            let mut doc = discovery.to_json(&rel);
            if let Json::Obj(pairs) = &mut doc {
                pairs.insert(0, ("command".into(), Json::from("discover")));
                pairs.insert(1, ("dataset".into(), Json::from(a.positional[0].as_str())));
            }
            println!("{doc}");
        }
        Format::Text if a.tableau => {
            for t in group_into_tableaux(&discovery.cover) {
                print!("{}", t.display(out_rel));
            }
        }
        // approximate and top-k runs print each rule with its measured
        // [support=N conf=F] suffix (check/repair/watch parse past it);
        // exact full covers keep the bare wire format
        Format::Text if a.min_confidence < 1.0 || a.top_k.is_some() => {
            print!("{}", discovery.to_annotated_text(&rel))
        }
        Format::Text => print!("{}", discovery.cover.to_text(out_rel)),
    }
    Ok(ExitCode::SUCCESS)
}

/// Rule loading for `check`/`repair`: constants must occur in `rel`.
/// The strict/lenient policy lives in `cfd_serve::session`, shared
/// with `watch` (interning parser) and the server's inline rules.
fn load_rules(rel: &Relation, path: &str, lenient: bool) -> Result<Vec<(String, Cfd)>> {
    load_rules_file_with(path, lenient, |line| parse_cfd(rel, line))
}

fn check(a: &Args) -> Result<ExitCode> {
    let obs = obs_session(a);
    let rel = obs.load_csv(&a.positional[0], a.threads)?;
    let rules = load_rules(&rel, &a.positional[1], a.lenient)?;
    eprintln!(
        "# checking {} rules against {} ({} threads)",
        rules.len(),
        a.positional[0],
        a.threads.max(1),
    );
    // one kernel pass over the relation for the whole cover: rules
    // sharing an LHS wildcard set share a grouping, and the sample cap
    // keeps per-rule output bounded while the counters stay exact
    let report = validate_with(
        &rel,
        rules.iter().map(|(_, cfd)| cfd),
        &ValidateOptions {
            threads: a.threads,
            limit: a.limit,
        },
        &obs.control(),
    );
    obs.finish()?;
    if a.format == Format::Json {
        let mut doc = report.to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.insert(0, ("command".into(), Json::from("check")));
            pairs.insert(1, ("dataset".into(), Json::from(a.positional[0].as_str())));
            pairs.insert(
                2,
                ("rules_file".into(), Json::from(a.positional[1].as_str())),
            );
        }
        // attach each rule's wire text to its report object (shared
        // with the server's check results)
        attach_rule_texts(&mut doc, &rules);
        println!("{doc}");
        return Ok(if report.satisfied() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    for r in &report.rules {
        if r.satisfied() {
            continue;
        }
        let (text, _) = &rules[r.rule];
        println!("VIOLATED {text}");
        for v in &r.sample {
            match v {
                Violation::Single(t) => {
                    println!("  tuple {}: {:?}", t + 1, rel.tuple_values(*t))
                }
                Violation::Pair(t1, t2) => println!(
                    "  tuples {} and {}: {:?} vs {:?}",
                    t1 + 1,
                    t2 + 1,
                    rel.tuple_values(*t1),
                    rel.tuple_values(*t2)
                ),
            }
        }
        if r.violations > r.sample.len() {
            println!(
                "  ... {} more violations (raise --limit)",
                r.violations - r.sample.len()
            );
        }
    }
    if report.satisfied() {
        println!("OK: all rules hold");
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn repair(a: &Args) -> Result<ExitCode> {
    let rel = relation_from_csv_path(&a.positional[0])?;
    let rules: Vec<Cfd> = load_rules(&rel, &a.positional[1], a.lenient)?
        .into_iter()
        .map(|(_, cfd)| cfd)
        .collect();
    use cfd_suite::model::repair::apply_repairs;
    let before = detect_violations(&rel, &rules).len();
    let repairs = suggest_repairs_for_cover(&rel, &rules);
    let fixed = apply_repairs(&rel, &repairs);
    let after = detect_violations(&fixed, &rules).len();
    let mut out = std::io::BufWriter::new(std::fs::File::create(&a.positional[2])?);
    cfd_suite::model::csv::relation_to_csv(&fixed, &mut out)?;
    use std::io::Write as _;
    out.flush().map_err(cfd_suite::prelude::Error::from)?;
    eprintln!(
        "# {} cell edits applied; violations {before} -> {after}; wrote {}",
        repairs.len(),
        a.positional[2]
    );
    for r in repairs.iter().take(10) {
        eprintln!(
            "#   tuple {} {}: {:?} -> {:?}",
            r.tuple + 1,
            rel.schema().name(r.attr),
            rel.column(r.attr).dict().value(r.current),
            rel.column(r.attr).dict().value(r.suggested),
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Streaming watch loop: warm the incremental engine on the initial
/// CSV, then apply insert/delete batches from stdin and print violation
/// deltas. Protocol, one operation per line:
///
/// * `<v1>,<v2>,…` or `+<v1>,<v2>,…` — stage a tuple insert (use the
///   `+` prefix when the first field itself starts with `#` or `-`),
/// * `-<row id>` — stage a delete (ids are printed on insert and are
///   stable: the initial CSV occupies `0..n`),
/// * empty line or `.` — apply the staged batch (deletes first, then
///   inserts, so a row can be replaced in one flush) and print its
///   delta; a rejected half (bad width, dead id) aborts the whole
///   flush, discarding both halves,
/// * `#…` — comment, ignored,
/// * `?` — print per-rule statistics.
///
/// Unlike `check`, rule constants need not occur in the initial CSV:
/// they are interned into the dictionaries up front, so a monitoring
/// rule can precede the first tuple it matches. Rule files follow the
/// same strictness policy as `check`: unparseable lines abort unless
/// `--lenient`. EOF applies any staged batch and prints final
/// statistics. Exit code 0 when the final live instance satisfies
/// every rule, 1 otherwise.
/// Runs one `--remine` cycle after an applied batch: trigger on any
/// rule whose live confidence fell below `--remine-theta`, re-discover
/// its attribute neighborhood, swap the cover atomically, and narrate
/// the delta as `REMINE` lines (`REMINE-` retired, `REMINE+` added,
/// then the kernel-validated post-state).
fn remine_cycle(engine: &mut cfd_suite::prelude::StreamEngine, a: &Args) {
    use cfd_suite::model::progress::Control;
    use cfd_suite::prelude::{remine, RemineOptions};
    let ropts = RemineOptions {
        theta: a.remine_theta,
        expand: a.remine_expand,
        k: 1,
        max_lhs: None,
        threads: a.threads,
    };
    let mut ctrl = Control::default();
    let deadline = (a.remine_timeout_ms > 0)
        .then(|| std::time::Instant::now() + std::time::Duration::from_millis(a.remine_timeout_ms));
    if let Some(d) = deadline {
        ctrl = ctrl.deadline_with(d);
    }
    let Ok(outcome) = remine(engine, &ropts, &ctrl) else {
        // the deadline tripped mid-mine; the cover swap is atomic, so
        // the engine still runs the pre-remine rules — keep watching
        println!(
            "REMINE timeout after {} ms (cover unchanged, rules={})",
            a.remine_timeout_ms,
            engine.rules().len()
        );
        return;
    };
    let Some(delta) = outcome else { return };
    let names: Vec<&str> = delta
        .neighborhood
        .iter()
        .map(|&at| engine.schema().name(at))
        .collect();
    println!(
        "REMINE retired={} added={} theta={} neighborhood=[{}]",
        delta.retired.len(),
        delta.replacement.len(),
        a.remine_theta,
        names.join(", "),
    );
    for r in &delta.retired {
        println!(
            "REMINE- {} confidence={:.4}",
            r.text,
            r.measure.confidence()
        );
    }
    for (text, m) in delta
        .replacement_texts
        .iter()
        .zip(&delta.replacement_measures)
    {
        println!("REMINE+ {text} confidence={:.4}", m.confidence());
    }
    let min_conf = delta
        .post_measures
        .iter()
        .filter(|m| m.support > 0)
        .map(|m| m.confidence())
        .fold(1.0, f64::min);
    println!(
        "REMINE verified rules={} min_confidence={:.4} live_violations={}",
        engine.rules().len(),
        min_conf,
        engine.live_violations().len()
    );
}

fn watch(a: &Args) -> Result<ExitCode> {
    use cfd_suite::model::cfd::parse_cfd_interning;
    use cfd_suite::prelude::StreamEngine;
    use std::io::BufRead;

    let obs = obs_session(a);
    let mut rel = obs.load_csv(&a.positional[0], 1)?;
    let loaded = load_rules_file_with(&a.positional[1], a.lenient, |line| {
        parse_cfd_interning(&mut rel, line)
    })?;
    let cfds: Vec<Cfd> = loaded.into_iter().map(|(_, c)| c).collect();
    let (engine, warm) = StreamEngine::warm(&rel, cfds, a.shards);
    let mut engine = engine.metrics_with(obs.registry().clone());
    eprintln!(
        "# watching {} rules over {} ({} tuples, {} shards)",
        engine.rules().len(),
        a.positional[0],
        engine.n_live(),
        engine.n_shards(),
    );

    // rule texts come from the engine (not the rules file): a --remine
    // swap retires and adds rules mid-session, and the engine's cached
    // display strings are the only ones that stay in sync
    let print_delta = |engine: &StreamEngine, delta: &cfd_suite::prelude::BatchDelta| {
        for &(r, v) in &delta.raised {
            match v {
                Violation::Single(t) => {
                    let vals = engine.row_values(t).unwrap_or_default();
                    println!("RAISED {} tuple {t}: {vals:?}", engine.rule_text(r));
                }
                Violation::Pair(t1, t2) => {
                    let v2 = engine.row_values(t2).unwrap_or_default();
                    println!(
                        "RAISED {} tuples {t1} and {t2}: {v2:?}",
                        engine.rule_text(r)
                    );
                }
            }
        }
        for &(r, v) in &delta.cleared {
            match v {
                Violation::Single(t) => println!("CLEARED {} tuple {t}", engine.rule_text(r)),
                Violation::Pair(t1, t2) => {
                    println!("CLEARED {} tuples {t1} and {t2}", engine.rule_text(r))
                }
            }
        }
    };
    let print_stats = |engine: &StreamEngine| {
        for s in engine.stats() {
            println!(
                "STATS rule {} matched={} violations={} confidence={:.4}  {}",
                s.rule,
                s.matched(),
                s.violations,
                s.confidence(),
                engine.rule_text(s.rule)
            );
        }
        println!(
            "STATS live={} violations={}",
            engine.n_live(),
            engine.live_violations().len()
        );
    };
    print_delta(&engine, &warm);

    let mut inserts: Vec<Vec<String>> = Vec::new();
    let mut deletes: Vec<u32> = Vec::new();
    let stdin = std::io::stdin();
    // The flush is all-or-nothing at the operator level: both halves
    // are validated before either is applied, so one bad line cannot
    // leave the stream half-applied and silently diverged.
    let apply = |engine: &mut StreamEngine,
                 inserts: &mut Vec<Vec<String>>,
                 deletes: &mut Vec<u32>| {
        let arity = engine.schema().arity();
        let mut seen = std::collections::HashSet::new();
        let bad_delete = deletes
            .iter()
            .find(|&&id| !engine.is_live(id) || !seen.insert(id));
        if let Some(&id) = bad_delete {
            eprintln!(
                "# batch rejected (both halves discarded): row {id} is not live or staged twice"
            );
        } else if let Some(row) = inserts.iter().find(|r| r.len() != arity) {
            eprintln!(
                    "# batch rejected (both halves discarded): row has {} values, schema has arity {arity}",
                    row.len()
                );
        } else {
            let (n_del, n_ins) = (deletes.len(), inserts.len());
            let mut raised = 0usize;
            let mut cleared = 0usize;
            if !deletes.is_empty() {
                match engine.delete_batch(deletes) {
                    Ok(delta) => {
                        raised += delta.raised.len();
                        cleared += delta.cleared.len();
                        print_delta(engine, &delta);
                    }
                    Err(e) => eprintln!("# delete batch rejected: {e}"),
                }
            }
            if !inserts.is_empty() {
                match engine.insert_batch(inserts) {
                    Ok((ids, delta)) => {
                        println!(
                            "APPLIED +{} rows {}..={}",
                            ids.len(),
                            ids[0],
                            ids[ids.len() - 1]
                        );
                        raised += delta.raised.len();
                        cleared += delta.cleared.len();
                        print_delta(engine, &delta);
                    }
                    Err(e) => eprintln!("# insert batch rejected: {e}"),
                }
            }
            // per-batch summary: what this flush changed and where the
            // live window stands now
            if n_del + n_ins > 0 {
                println!(
                    "BATCH +{n_ins} -{n_del} raised={raised} cleared={cleared} live={} violations={}",
                    engine.n_live(),
                    engine.live_violations().len(),
                );
            }
            if a.remine {
                remine_cycle(engine, a);
            }
        }
        deletes.clear();
        inserts.clear();
    };
    for line in stdin.lock().lines() {
        let line = line.map_err(Error::from)?;
        let line = line.trim();
        match line {
            "" | "." => apply(&mut engine, &mut inserts, &mut deletes),
            "?" => print_stats(&engine),
            _ if line.starts_with('#') => {}
            _ => {
                if let Some(id) = line.strip_prefix('-') {
                    match id.trim().parse::<u32>() {
                        Ok(id) => deletes.push(id),
                        Err(_) => eprintln!("# bad delete (want -<row id>): {line:?}"),
                    }
                } else {
                    let row = line.strip_prefix('+').unwrap_or(line);
                    inserts.push(row.split(',').map(|v| v.trim().to_string()).collect());
                }
            }
        }
    }
    // EOF: apply whatever is staged (a piped session need not end with
    // an explicit flush line), emit the final per-rule stats, and flush
    // stdout explicitly — when stdout is a pipe the BufWriter would
    // otherwise be dropped without a guaranteed flush on some exits.
    apply(&mut engine, &mut inserts, &mut deletes);
    print_stats(&engine);
    obs.finish()?;
    use std::io::Write as _;
    std::io::stdout().flush().map_err(Error::from)?;
    if engine.live_violations().is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

/// Binds and runs the resident service. The first stdout line is
/// `SERVE <addr>` (the resolved address — pass `--addr host:0` for an
/// ephemeral port), so scripts can wait for readiness and learn the
/// port in one read. Runs until a client sends `{"op": "shutdown"}`.
fn serve(a: &Args) -> Result<ExitCode> {
    let ms = |v: u64| (v > 0).then(|| std::time::Duration::from_millis(v));
    let opts = ServeOptions {
        addr: a.addr.clone(),
        workers: a.workers,
        queue_depth: a.queue_depth,
        registry_budget: a.registry_budget_mb << 20,
        max_line: a.max_line_kb << 10,
        job_timeout: ms(a.job_timeout_ms),
        io_timeout: ms(a.io_timeout_ms),
        idle_timeout: ms(a.idle_ms),
        fault_injection: a.faults,
    };
    let server = Server::bind(&opts).map_err(Error::from)?;
    // the server's registry is the session's: ingest/job/serve metrics
    // from every connection land in one place, flushed at shutdown
    let obs = ObsSession::with_registry(server.metrics(), a.trace, a.metrics_out.clone());
    let addr = server.local_addr();
    println!("SERVE {addr}");
    use std::io::Write as _;
    std::io::stdout().flush().map_err(Error::from)?;
    eprintln!(
        "# cfd serve: listening on {addr} ({} workers, queue depth {}, registry {} MiB, \
         lines capped at {} KiB)",
        opts.workers.max(1),
        opts.queue_depth.max(1),
        a.registry_budget_mb,
        a.max_line_kb,
    );
    server.run().map_err(Error::from)?;
    obs.finish()?;
    Ok(ExitCode::SUCCESS)
}

/// What one blocking read from the server produced, with timeouts and
/// hangups made explicit so the client can react instead of wedging.
enum ClientRead {
    Line(String),
    Eof,
    TimedOut,
}

/// Reads one reply/event line, classifying `WouldBlock`/`TimedOut`
/// separately: with `--io-timeout-ms` a silent server is a structured
/// failure, not an eternal hang.
fn client_read(reader: &mut impl std::io::BufRead) -> std::io::Result<ClientRead> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Ok(ClientRead::Eof),
        Ok(_) => Ok(ClientRead::Line(line.trim_end().to_string())),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Ok(ClientRead::TimedOut)
        }
        Err(e) => Err(e),
    }
}

/// A scripted client: sends stdin lines (blank/`#` skipped) to the
/// server *in lockstep* — each request waits for its reply (event lines
/// stream through as they arrive) before the next is sent. Exits 0 when
/// every reply was `"ok": true`, 1 otherwise — so a scripted session
/// doubles as a smoke test.
///
/// Transient overload replies (`queue_full`, `registry_budget`) are
/// retried up to `--retries` times with exponential backoff and jitter,
/// seeded by the server's `retry_after_ms` hint (else `--backoff-ms`).
/// With `--io-timeout-ms`, a server that stops responding mid-session
/// is a clear error and a nonzero exit, not a hang.
fn client(a: &Args) -> Result<ExitCode> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    let addr = &a.positional[0];
    // retry briefly: the usual caller just forked `cfd serve`
    let mut attempt = 0;
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) if attempt < 25 => {
                attempt += 1;
                let _ = e;
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => return Err(Error::from(e)),
        }
    };
    if a.io_timeout_ms > 0 {
        stream
            .set_read_timeout(Some(Duration::from_millis(a.io_timeout_ms)))
            .map_err(Error::from)?;
        stream
            .set_write_timeout(Some(Duration::from_millis(a.io_timeout_ms)))
            .map_err(Error::from)?;
    }
    let mut write_half = stream.try_clone().map_err(Error::from)?;
    let mut reader = BufReader::new(stream);
    // fixed seed: jitter exists to spread a herd of clients, and these
    // are independent processes — determinism per process keeps
    // scripted sessions reproducible
    let mut rng = StdRng::seed_from_u64(0xcfd_c11e47);
    let mut failed = false;
    let mut server_gone = false;
    let stdin = std::io::stdin();
    'script: for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim().to_string();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut attempts_left = a.retries;
        let mut backoff = a.backoff_ms.max(1);
        loop {
            if write_half.write_all(line.as_bytes()).is_err()
                || write_half.write_all(b"\n").is_err()
                || write_half.flush().is_err()
            {
                server_gone = true;
                break 'script;
            }
            // stream events through until this request's reply arrives
            let reply = loop {
                match client_read(&mut reader).map_err(Error::from)? {
                    ClientRead::Eof => {
                        server_gone = true;
                        break 'script;
                    }
                    ClientRead::TimedOut => {
                        eprintln!(
                            "error: server stopped responding (no data for {} ms)",
                            a.io_timeout_ms
                        );
                        std::io::stdout().flush().map_err(Error::from)?;
                        return Ok(ExitCode::FAILURE);
                    }
                    ClientRead::Line(l) => {
                        let doc = Json::parse(&l).ok();
                        let is_event = doc.as_ref().is_some_and(|d| d.get("event").is_some());
                        if is_event {
                            println!("{l}");
                        } else {
                            break (l, doc);
                        }
                    }
                }
            };
            let (text, doc) = reply;
            let ok = doc
                .as_ref()
                .and_then(|d| d.get("ok"))
                .and_then(Json::as_bool);
            let code = doc
                .as_ref()
                .and_then(|d| d.get("error"))
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .map(str::to_string);
            let transient = matches!(code.as_deref(), Some("queue_full" | "registry_budget"));
            if ok == Some(false) && transient && attempts_left > 0 {
                // prefer the server's own estimate of when capacity
                // frees up; fall back to the local backoff schedule
                let hint = doc
                    .as_ref()
                    .and_then(|d| d.get("error"))
                    .and_then(|e| e.get("retry_after_ms"))
                    .and_then(Json::as_f64)
                    .map(|ms| ms as u64);
                let base = hint.unwrap_or(backoff).max(1);
                let jitter = rng.gen_range(0..=base / 4);
                eprintln!(
                    "# transient {} — retrying in {} ms ({} attempts left)",
                    code.as_deref().unwrap_or("error"),
                    base + jitter,
                    attempts_left,
                );
                std::thread::sleep(Duration::from_millis(base + jitter));
                attempts_left -= 1;
                backoff = (backoff * 2).min(30_000);
                continue;
            }
            if ok == Some(false) {
                failed = true;
            }
            println!("{text}");
            break;
        }
    }
    // half-close: the server keeps streaming (async job events) until
    // its side is done
    let _ = write_half.shutdown(std::net::Shutdown::Write);
    loop {
        match client_read(&mut reader).map_err(Error::from)? {
            ClientRead::Eof => break,
            ClientRead::TimedOut => {
                eprintln!(
                    "error: server stopped responding (no data for {} ms)",
                    a.io_timeout_ms
                );
                std::io::stdout().flush().map_err(Error::from)?;
                return Ok(ExitCode::FAILURE);
            }
            ClientRead::Line(l) => {
                if let Ok(doc) = Json::parse(&l) {
                    if doc.get("ok").and_then(Json::as_bool) == Some(false) {
                        failed = true;
                    }
                }
                println!("{l}");
            }
        }
    }
    std::io::stdout().flush().map_err(Error::from)?;
    // a server that vanished mid-script (crash, injected disconnect)
    // is a failure even if every completed reply was ok
    Ok(if failed || server_gone {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn stats(a: &Args) -> Result<ExitCode> {
    let rel = relation_from_csv_path(&a.positional[0])?;
    println!("file:    {}", a.positional[0]);
    println!("tuples:  {}", rel.n_rows());
    println!("arity:   {}", rel.arity());
    println!("CF:      {:.4}", rel.correlation_factor());
    println!("columns:");
    for at in 0..rel.arity() {
        println!(
            "  {:<20} |dom| = {}",
            rel.schema().name(at),
            rel.column(at).domain_size()
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Lists the registered algorithm names, one per line — `Algo::all()`
/// drives this, the `--algo` table, and the CI algorithm matrix, so
/// the three can never drift apart.
fn algos() -> ExitCode {
    for a in Algo::all() {
        println!("{}", a.name());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let cmd = argv[0].clone();
    let args = match parse_args(&argv[1..]) {
        Ok(a) => a,
        Err(msg) => return arg_error(&msg),
    };
    let need = match cmd.as_str() {
        "discover" | "stats" | "client" => 1,
        "check" | "watch" => 2,
        "repair" => 3,
        "algos" | "serve" => 0,
        _ => return usage(),
    };
    if args.positional.len() != need {
        return arg_error(&format!(
            "`cfd {cmd}` takes {need} positional argument(s), got {}",
            args.positional.len()
        ));
    }
    let run = match cmd.as_str() {
        "discover" => discover(&args),
        "check" => check(&args),
        "repair" => repair(&args),
        "stats" => stats(&args),
        "watch" => watch(&args),
        "serve" => serve(&args),
        "client" => client(&args),
        "algos" => return algos(),
        _ => unreachable!(),
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
