//! Exhaustive CFD discovery — the reference oracle.
//!
//! Enumerates every candidate CFD over the active domain (all LHS
//! attribute sets, all constant/wildcard patterns, all RHS values) and
//! keeps the minimal, k-frequent ones. Exponential in arity and domain
//! size; usable only on tiny instances, which is exactly its role: the
//! property tests compare CFDMiner, CTANE and FastCFD against it.

use crate::minimality::is_minimal;
use cfd_model::attrset::AttrSet;
use cfd_model::cfd::Cfd;
use cfd_model::cover::CanonicalCover;
use cfd_model::pattern::{PVal, Pattern};
use cfd_model::progress::{Cancelled, Control, SearchStats};
use cfd_model::relation::Relation;

/// Exhaustive discovery of the canonical cover (minimal, k-frequent
/// constant + variable CFDs).
#[derive(Clone, Copy, Debug)]
pub struct BruteForce {
    k: usize,
}

impl BruteForce {
    /// Creates the oracle with support threshold `k ≥ 1`.
    pub fn new(k: usize) -> BruteForce {
        assert!(k >= 1, "support threshold must be at least 1");
        BruteForce { k }
    }

    /// Enumerates the canonical cover of `rel`. Cost is
    /// `O(arity · 2^arity · Π(dom+1) · |r|)` — keep instances tiny.
    pub fn discover(&self, rel: &Relation) -> CanonicalCover {
        self.run(rel, &Control::default(), &mut SearchStats::default())
            .expect("default Control is never cancelled")
    }

    /// [`BruteForce::discover`] with run control and instrumentation:
    /// polls `ctrl` per LHS attribute set, reports `rhs` progress, and
    /// counts candidate CFDs tested (`candidates`) against those
    /// surviving the minimality referee (`emitted`).
    pub fn run(
        &self,
        rel: &Relation,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, Cancelled> {
        let arity = rel.arity();
        assert!(
            arity <= 10,
            "brute force is a test oracle; refusing arity {arity} > 10"
        );
        let mut out: Vec<Cfd> = Vec::new();
        for rhs in 0..arity {
            let lhs_universe = AttrSet::full(arity).without(rhs);
            for lhs_attrs in lhs_universe.subsets() {
                ctrl.check()?;
                let attrs: Vec<usize> = lhs_attrs.iter().collect();
                let mut pattern_vals: Vec<PVal> = Vec::with_capacity(attrs.len());
                self.enumerate(rel, &attrs, &mut pattern_vals, rhs, &mut out, stats);
            }
            ctrl.report("rhs", rhs + 1, arity);
        }
        Ok(CanonicalCover::from_cfds(out))
    }

    #[allow(clippy::too_many_arguments)] // internal recursion carrying instrumentation
    fn enumerate(
        &self,
        rel: &Relation,
        attrs: &[usize],
        vals: &mut Vec<PVal>,
        rhs: usize,
        out: &mut Vec<Cfd>,
        stats: &mut SearchStats,
    ) {
        if vals.len() == attrs.len() {
            let lhs = Pattern::from_pairs(attrs.iter().copied().zip(vals.iter().copied()));
            // variable CFD — canonical-cover convention: an all-constant
            // LHS variable CFD holds iff the RHS attribute is constant on
            // the matching tuples, i.e. iff its constant counterpart holds;
            // it is implied and excluded (cf. FindMin, which never emits
            // variable CFDs with an empty wildcard part)
            if !lhs.is_all_const() {
                let var = Cfd::variable(lhs.clone(), rhs);
                stats.candidates += 1;
                if is_minimal(rel, &var, self.k) {
                    stats.emitted += 1;
                    out.push(var);
                } else {
                    stats.pruned += 1;
                }
            }
            // constant CFDs need an all-constant LHS
            if lhs.is_all_const() {
                for a in 0..rel.column(rhs).domain_size() as u32 {
                    let con = Cfd::new(lhs.clone(), rhs, PVal::Const(a));
                    stats.candidates += 1;
                    if is_minimal(rel, &con, self.k) {
                        stats.emitted += 1;
                        out.push(con);
                    } else {
                        stats.pruned += 1;
                    }
                }
            }
            return;
        }
        let a = attrs[vals.len()];
        vals.push(PVal::Var);
        self.enumerate(rel, attrs, vals, rhs, out, stats);
        vals.pop();
        for c in 0..rel.column(a).domain_size() as u32 {
            vals.push(PVal::Const(c));
            self.enumerate(rel, attrs, vals, rhs, out, stats);
            vals.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::cust_relation;
    use cfd_model::cfd::parse_cfd;
    use cfd_model::satisfy::satisfies;
    use cfd_model::support::support;

    #[test]
    fn finds_paper_rules_on_cust() {
        let r = cust_relation();
        let cover = BruteForce::new(2).discover(&r);
        // minimal rules claimed by the paper at k ≤ 2
        for txt in [
            "([CC, AC] -> CT, (_, _ || _))",      // f1
            "([CC, ZIP] -> STR, (44, _ || _))",   // φ0
            "([CC, AC] -> CT, (44, 131 || EDI))", // φ2
            "(AC -> CT, (908 || MH))",            // Example 7
        ] {
            let c = parse_cfd(&r, txt).unwrap();
            assert!(cover.contains(&c), "{txt} must be in the cover");
        }
        // non-minimal rules must be absent
        for txt in [
            "([CC, AC] -> CT, (01, 908 || MH))", // φ1 (CC droppable)
            "([CC, AC] -> CT, (01, _ || _))",    // f1 specialization
        ] {
            let c = parse_cfd(&r, txt).unwrap();
            assert!(!cover.contains(&c), "{txt} must not be in the cover");
        }
    }

    #[test]
    fn every_output_holds_and_is_minimal() {
        let r = cust_relation();
        for k in [1, 2, 3] {
            let cover = BruteForce::new(k).discover(&r);
            assert!(!cover.is_empty());
            for cfd in cover.iter() {
                assert!(satisfies(&r, cfd));
                assert!(support(&r, cfd) >= k);
                assert!(is_minimal(&r, cfd, k));
            }
        }
    }

    #[test]
    fn higher_k_shrinks_cover() {
        let r = cust_relation();
        let k1 = BruteForce::new(1).discover(&r).len();
        let k3 = BruteForce::new(3).discover(&r).len();
        assert!(k3 < k1);
    }
}
