//! Chaos test: the server vs. randomized fault schedules.
//!
//! Seeded rounds of injected socket deaths, torn frames, stalls, and
//! panics run against concurrent scripted clients, then the
//! post-chaos server must uphold the robustness invariants:
//!
//! 1. every request line produced exactly one structured reply — or
//!    the connection died cleanly (no phantom requests, no garbage
//!    mid-stream; a torn final line right before EOF is the one
//!    tolerated artifact);
//! 2. no worker thread was lost — a full complement of concurrent
//!    sync jobs still completes;
//! 3. the queue drains back to depth zero;
//! 4. a post-chaos discovery is byte-identical to the pristine run;
//! 5. `internal_panic` and `deadline_exceeded` surface as structured
//!    errors while the server keeps serving.
//!
//! Everything runs in one `#[test]`: fault-point state is
//! process-global, so the rounds must not interleave with other
//! arming tests (this file is its own test binary — the lib's
//! faultpoint unit test lives in a different process).

use cfd_model::Json;
use cfd_serve::{faultpoint, FaultAction, ServeOptions, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

const CUST_CSV: &str = "\
CC,AC,PN,NM,STR,CT,ZIP
01,908,1111111,Mike,Tree Ave.,MH,07974
01,908,1111111,Rick,Tree Ave.,MH,07974
01,212,2222222,Joe,5th Ave,NYC,01202
01,908,2222222,Jim,Elm Str.,MH,07974
44,131,3333333,Ben,High St.,EDI,EH4 1DT
44,131,4444444,Ian,High St.,EDI,EH4 1DT
44,908,4444444,Ian,Port PI,MH,W1B 1JH
01,212,5555555,Sean,3rd Str.,NYC,01202
";

/// One scripted connection; every receive tolerates disconnects.
struct Wire {
    w: TcpStream,
    r: BufReader<TcpStream>,
}

/// What reading one line produced under chaos.
enum Read {
    Line(Json),
    /// Unparseable bytes immediately before EOF: a torn reply frame.
    Torn,
    Eof,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Wire {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        let r = BufReader::new(s.try_clone().expect("clone socket"));
        Wire { w: s, r }
    }

    /// Sends one request line; `false` when the connection is dead.
    fn send(&mut self, doc: &Json) -> bool {
        let line = format!("{doc}\n");
        self.w.write_all(line.as_bytes()).is_ok() && self.w.flush().is_ok()
    }

    fn recv(&mut self) -> Read {
        let mut line = String::new();
        match self.r.read_line(&mut line) {
            Ok(0) | Err(_) => Read::Eof,
            Ok(_) => {
                let trimmed = line.trim_end();
                // an unterminated tail is only legal as the very last
                // bytes of the stream (a fault tore the reply)
                if !line.ends_with('\n') {
                    return Read::Torn;
                }
                match Json::parse(trimmed) {
                    Ok(doc) => Read::Line(doc),
                    Err(_) => Read::Torn,
                }
            }
        }
    }

    /// Reads until this request's reply (events pass through); `None`
    /// on disconnect or torn frame.
    fn reply(&mut self) -> Option<Json> {
        loop {
            match self.recv() {
                Read::Line(doc) if doc.get("ok").is_some() => return Some(doc),
                Read::Line(_) => continue, // event
                Read::Torn | Read::Eof => return None,
            }
        }
    }
}

fn req(op: &str, fields: &[(&str, Json)]) -> Json {
    let mut all = vec![("op", Json::from(op))];
    all.extend(fields.iter().cloned());
    Json::obj(all)
}

fn assert_ok(doc: &Json) {
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok reply, got {doc}"
    );
}

fn error_code(doc: &Json) -> &str {
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("reply without error code: {doc}"))
}

fn sync_discover() -> Json {
    req(
        "discover",
        &[
            ("dataset", Json::from("cust")),
            ("algo", Json::from("fastcfd")),
            ("sync", Json::from(true)),
        ],
    )
}

/// The deterministic portion of a discovery reply (timings excluded).
fn rules_and_counts(rep: &Json) -> (String, String) {
    let result = rep.get("result").expect("result");
    (
        result.get("rules").expect("rules").to_string(),
        result.get("counts").expect("counts").to_string(),
    )
}

/// Arms 3–6 random global faults for one chaos round. Panic actions
/// are restricted to the *shielded* points (`job_run`, `ingest`):
/// connection-thread panics are survivable too, but their backtraces
/// would spam the test log for no extra coverage.
fn arm_random_round(rng: &mut StdRng) {
    const MENU: &[(&str, &[&str])] = &[
        ("read_line", &["io_error", "short_read", "delay"]),
        ("reply_write", &["io_error", "short_read", "delay"]),
        ("ingest", &["io_error", "delay", "panic"]),
        ("job_run", &["io_error", "delay", "panic"]),
    ];
    let n = rng.gen_range(3usize..=6);
    for _ in 0..n {
        let (point, actions) = MENU[rng.gen_range(0..MENU.len())];
        let action = actions[rng.gen_range(0..actions.len())];
        let act = faultpoint::parse_action(action, Some(rng.gen_range(5u64..=20)))
            .expect("menu actions parse");
        let skip = rng.gen_range(0u64..=3);
        let times = rng.gen_range(1u64..=2);
        faultpoint::arm(point, None, act, skip, times).expect("arm round fault");
    }
}

/// One chaos client: a short scripted session in lockstep. Returns
/// `(requests_sent, replies_received)`; panics only on a *protocol*
/// violation (reply surplus, garbage mid-stream), never on a clean
/// disconnect or structured failure.
fn chaos_client(addr: SocketAddr, round: usize, id: usize) -> (usize, usize) {
    let mut w = Wire::connect(addr);
    let name = format!("chaos_r{round}c{id}");
    let script = [
        req("ping", &[]),
        req(
            "register",
            &[
                ("name", Json::from(name.as_str())),
                ("csv", Json::from("A,B\nx,1\ny,2\n")),
            ],
        ),
        sync_discover(),
        req("unregister", &[("name", Json::from(name.as_str()))]),
        req("stats", &[]),
    ];
    let mut sent = 0usize;
    let mut replies = 0usize;
    for r in &script {
        if !w.send(r) {
            break;
        }
        sent += 1;
        match w.reply() {
            Some(_) => replies += 1,
            None => break, // clean disconnect — stop the script
        }
    }
    assert!(
        replies <= sent,
        "round {round} client {id}: {replies} replies for {sent} requests"
    );
    (sent, replies)
}

#[test]
fn chaos_rounds_preserve_service_invariants() {
    faultpoint::clear();
    let server = Server::bind(&ServeOptions {
        workers: 2,
        queue_depth: 8,
        fault_injection: true,
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let metrics = server.metrics();
    let handle = thread::spawn(move || server.run());

    // pristine baseline, no faults armed
    let mut main = Wire::connect(addr);
    assert!(main.send(&req(
        "register",
        &[
            ("name", Json::from("cust")),
            ("csv", Json::from(CUST_CSV)),
            ("pin", Json::from(true)),
        ],
    )));
    assert_ok(&main.reply().expect("pristine register"));
    assert!(main.send(&sync_discover()));
    let pristine = main.reply().expect("pristine discover");
    assert_ok(&pristine);
    let baseline = rules_and_counts(&pristine);

    // chaos rounds: seeded fault schedules vs concurrent clients plus
    // one abrupt disconnecter per round
    let mut rng = StdRng::seed_from_u64(0xc4a05);
    for round in 0..3 {
        arm_random_round(&mut rng);
        thread::scope(|s| {
            for id in 0..4 {
                s.spawn(move || chaos_client(addr, round, id));
            }
            s.spawn(move || {
                // send two requests and slam the connection shut
                let mut w = Wire::connect(addr);
                let _ = w.send(&req("ping", &[]));
                let _ = w.send(&sync_discover());
                drop(w);
            });
        });
        faultpoint::clear();
    }

    // a deterministic torn inbound frame: the session disconnects
    // without a phantom request or a reply
    faultpoint::arm("read_line", None, FaultAction::ShortRead, 0, 1).expect("arm short_read");
    {
        let mut w = Wire::connect(addr);
        assert!(w.send(&req("ping", &[])));
        assert!(w.reply().is_none(), "torn frame must not get a reply");
    }
    faultpoint::clear();

    // invariant: the server still answers on a fresh connection
    let mut w = Wire::connect(addr);
    assert!(w.send(&req("ping", &[])));
    assert_ok(&w.reply().expect("post-chaos ping"));

    // invariant: a panicking job is a structured internal_panic, armed
    // over the wire via the test-only inject op, and the *next* job on
    // the same connection succeeds
    assert!(w.send(&req(
        "inject",
        &[
            ("point", Json::from("job_run")),
            ("action", Json::from("panic")),
            ("global", Json::from(true)),
        ],
    )));
    assert_ok(&w.reply().expect("inject reply"));
    assert!(w.send(&sync_discover()));
    let failed = w.reply().expect("panicked job reply");
    assert_eq!(failed.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&failed), "internal_panic");
    assert!(w.send(&sync_discover()));
    let healed = w.reply().expect("post-panic discover");
    assert_ok(&healed);
    assert_eq!(rules_and_counts(&healed), baseline, "panic corrupted state");

    // invariant: a stalled job with a 1 ms budget fails deadline_exceeded
    assert!(w.send(&req(
        "inject",
        &[
            ("point", Json::from("job_run")),
            ("action", Json::from("delay")),
            ("delay_ms", Json::from(100u64)),
            ("global", Json::from(true)),
        ],
    )));
    assert_ok(&w.reply().expect("inject delay reply"));
    let mut slow = sync_discover();
    if let Json::Obj(fields) = &mut slow {
        fields.insert(0, ("timeout_ms".into(), Json::from(1u64)));
    }
    assert!(w.send(&slow));
    let timed_out = w.reply().expect("deadline reply");
    assert_eq!(error_code(&timed_out), "deadline_exceeded");

    // invariant: both workers survived — a full complement of
    // concurrent sync jobs completes, each byte-identical to pristine
    thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let mut w = Wire::connect(addr);
                assert!(w.send(&sync_discover()));
                let rep = w.reply().expect("post-chaos worker check");
                assert_ok(&rep);
                assert_eq!(rules_and_counts(&rep), baseline);
            });
        }
    });

    // invariant: the queue drained and the chaos left its fingerprints
    // in the metrics (faults fired, at least one partial disconnect)
    assert!(w.send(&req("stats", &[])));
    let stats = w.reply().expect("stats reply");
    assert_ok(&stats);
    let server_obj = stats.get("server").expect("server gauges");
    assert_eq!(
        server_obj.get("queue_depth").and_then(Json::as_f64),
        Some(0.0),
        "queue did not drain: {stats}"
    );
    assert!(
        server_obj
            .get("faults_injected")
            .and_then(Json::as_f64)
            .expect("faults_injected gauge")
            > 0.0
    );
    let snapshot = metrics.snapshot().to_json();
    let counter = |name: &str| {
        snapshot
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    assert!(counter("serve.panics") >= 1.0, "panic shield never fired");
    assert!(
        counter("serve.deadline_exceeded") >= 1.0,
        "deadline classification never fired"
    );
    assert!(
        counter("serve.partial_disconnects") >= 1.0,
        "torn frame was not recorded"
    );

    // shutdown still drains cleanly after everything above
    assert!(w.send(&req("shutdown", &[])));
    let bye = w.reply().expect("shutdown reply");
    assert_ok(&bye);
    assert!(bye.get("jobs_drained").and_then(Json::as_f64).is_some());
    handle.join().expect("server thread").expect("server run");
    faultpoint::clear();
}
