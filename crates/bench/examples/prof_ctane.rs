//! Quick phase profile of exact CTANE on the tax workload.
use cfd_core::api::{Algo, Control, DiscoverOptions, Discoverer};
use cfd_datagen::tax::TaxGenerator;
use std::time::Instant;

fn main() {
    let rel = TaxGenerator::new(1000).generate();
    let opts = DiscoverOptions::new(2);
    let t = Instant::now();
    let d = Algo::Ctane
        .discover_with(&rel, &opts, &Control::default())
        .unwrap();
    println!("total {:?}  rules {}", t.elapsed(), d.cover.len());
    for p in &d.stats.phases {
        println!("  phase {} {:?}", p.name, p.duration);
    }
    println!(
        "candidates {} partitions {} pruned {}",
        d.stats.candidates, d.stats.partitions, d.stats.pruned
    );
}
