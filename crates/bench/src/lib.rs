//! # cfd-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the paper's evaluation (Section 6): the dataset table of §6.1 and
//! Figures 5–16, plus the ablations DESIGN.md calls out.
//!
//! Two scales are supported:
//!
//! * **quick** (default) — parameter sweeps scaled down so the whole
//!   suite finishes in minutes on a laptop; the *shape* of every curve
//!   (who wins, by what factor, where the crossovers fall) is preserved;
//! * **full** (`--full`) — the paper's parameters (up to 10⁶ tuples,
//!   arity 31); expect hours, exactly like the original study.
//!
//! Run `cargo run --release -p cfd-bench --bin experiments -- all` and
//! see `EXPERIMENTS.md` for the recorded paper-vs-measured comparison.
//!
//! ```
//! use cfd_bench::{Cell, Table, EXPERIMENT_IDS};
//!
//! // every experiment of the harness is addressable by id
//! assert!(EXPERIMENT_IDS.contains(&"fig5"));
//! // the report tables render fixed-width text and export CSV
//! let mut t = Table::new("Fig 5. Scalability", "DBSIZE", &["ctane"]);
//! t.push_row(1000usize, vec![Cell::Secs(1.37)]);
//! assert!(t.render().contains("DBSIZE"));
//! assert!(t.to_csv().contains("1.370000"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::{run_experiment, Scale, EXPERIMENT_IDS};
pub use table::{Cell, Table};
