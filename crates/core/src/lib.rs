//! # cfd-core
//!
//! The discovery algorithms of *Discovering Conditional Functional
//! Dependencies* (Fan, Geerts, Li & Xiong, ICDE 2009 / TKDE 2011):
//!
//! * [`CfdMiner`] — constant CFDs via free/closed item sets (Section 3);
//! * [`Ctane`] — general CFDs, level-wise with `C⁺` pruning (Section 4);
//! * [`FastCfd`] — general CFDs, depth-first over difference sets
//!   (Section 5), in both the closed-set (`FastCFD`) and
//!   stripped-partition (`NaiveFast`) configurations;
//! * [`BruteForce`] — an exhaustive oracle for testing;
//! * [`minimality`] — the left-reducedness referee (Section 2.2.1).
//!
//! All algorithms return the same [`cfd_model::CanonicalCover`] — the set
//! of minimal, k-frequent constant and variable CFDs holding on the
//! input — which the workspace test suites cross-validate pairwise and
//! against the oracle.
//!
//! ```
//! use cfd_core::{CfdMiner, Ctane, FastCfd};
//! use cfd_datagen::cust::cust_relation;
//!
//! let rel = cust_relation();
//! let fast = FastCfd::new(2).discover(&rel);
//! let ctane = Ctane::new(2).discover(&rel);
//! assert_eq!(fast.cfds(), ctane.cfds());
//! let constants = CfdMiner::new(2).discover(&rel);
//! assert_eq!(constants.cfds(), fast.constant_cover().cfds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod bruteforce;
pub mod cfdminer;
pub mod ctane;
pub mod fastcfd;
pub mod minimality;

pub use api::{Algo, DiscoverError, DiscoverOptions, Discoverer, Discovery, Note, UnknownAlgo};
pub use bruteforce::BruteForce;
pub use cfdminer::CfdMiner;
pub use ctane::Ctane;
pub use fastcfd::{DiffSetMode, FastCfd};
pub use minimality::{audit_cover, holds_and_frequent, is_minimal};
