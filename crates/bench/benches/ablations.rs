//! Criterion micro-benchmarks for the design-choice ablations of
//! DESIGN.md: Lemma 5 free-set pruning, the Closed₂ vs stripped-partition
//! difference-set engines, FindMin dynamic reordering, the classical
//! FD baselines (TANE vs FastFD), and the partition-layer constant
//! lookups (full-relation scans vs cached counting-sort value regions).

use cfd_core::{DiffSetMode, FastCfd};
use cfd_datagen::tax::TaxGenerator;
use cfd_fd::{FastFd, Tane};
use cfd_model::pattern::PVal;
use cfd_partition::{Partition, RelationIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let rel = TaxGenerator::new(1_500).generate();
    let k = 2;

    group.bench_with_input(BenchmarkId::new("freeset", "on"), &rel, |b, rel| {
        b.iter(|| FastCfd::new(k).discover(rel))
    });
    group.bench_with_input(BenchmarkId::new("freeset", "off"), &rel, |b, rel| {
        b.iter(|| FastCfd::new(k).free_set_pruning(false).discover(rel))
    });

    group.bench_with_input(BenchmarkId::new("engine", "closed2"), &rel, |b, rel| {
        b.iter(|| FastCfd::new(k).discover(rel))
    });
    group.bench_with_input(BenchmarkId::new("engine", "stripped"), &rel, |b, rel| {
        b.iter(|| {
            FastCfd::new(k)
                .mode(DiffSetMode::StrippedPartitions)
                .discover(rel)
        })
    });

    group.bench_with_input(BenchmarkId::new("reorder", "on"), &rel, |b, rel| {
        b.iter(|| FastCfd::new(k).discover(rel))
    });
    group.bench_with_input(BenchmarkId::new("reorder", "off"), &rel, |b, rel| {
        b.iter(|| FastCfd::new(k).dynamic_reorder(false).discover(rel))
    });

    group.bench_with_input(BenchmarkId::new("fd", "tane"), &rel, |b, rel| {
        b.iter(|| Tane::new().discover(rel))
    });
    group.bench_with_input(BenchmarkId::new("fd", "fastfd"), &rel, |b, rel| {
        b.iter(|| FastFd::new().discover(rel))
    });

    // partition-layer constant lookups: the CTANE-shaped workload of
    // repeated by_constant + refine(·, Const) over every frequent value
    // of the small-domain columns — full-relation scans vs the cached
    // counting-sort value regions of a RelationIndex
    // (base column, refining column, code) triples over the
    // small-domain columns — large equivalence classes refined by
    // selective constants, the shape CTANE's lattice walk produces
    let small: Vec<usize> = (0..rel.arity())
        .filter(|&a| rel.column(a).domain_size() <= 64)
        .collect();
    let rel_ref = &rel;
    let lookups: Vec<(usize, usize, u32)> = small
        .iter()
        .flat_map(|&base| {
            small
                .iter()
                .filter(move |&&a| a != base)
                .flat_map(move |&a| {
                    (0..rel_ref.column(a).domain_size() as u32).map(move |c| (base, a, c))
                })
        })
        .collect();
    let bases: Vec<Partition> = (0..rel.arity())
        .map(|a| Partition::by_attribute(&rel, a))
        .collect();
    group.bench_with_input(
        BenchmarkId::new("const-lookup", "scan"),
        &(&rel, &lookups, &bases),
        |b, (rel, lookups, bases)| {
            b.iter(|| {
                let mut total = 0usize;
                for &(base, a, c) in lookups.iter() {
                    // the pre-index code path: one full scan per lookup,
                    // class-by-class filtering per refinement
                    let members: Vec<u32> = rel.tuples().filter(|&t| rel.code(t, a) == c).collect();
                    let p = bases[base].refine(rel, a, PVal::Const(c));
                    total += members.len() + p.n_rows();
                }
                total
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("const-lookup", "indexed"),
        &(&rel, &lookups, &bases),
        |b, (rel, lookups, bases)| {
            b.iter(|| {
                let index = RelationIndex::new(rel);
                let mut total = 0usize;
                for &(base, a, c) in lookups.iter() {
                    let members = Partition::by_constant_in(index.column(rel, a), c);
                    let p = bases[base].refine_with(rel, &index, a, PVal::Const(c));
                    total += members.n_rows() + p.n_rows();
                }
                total
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
