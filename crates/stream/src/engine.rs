//! The streaming engine: dictionary encoding, the live row store, and
//! sharded batch application.

use crate::delta::{coalesce, BatchDelta, Event, RuleId};
use crate::rule::{RuleState, RuleStats};
use crate::RowId;
use cfd_model::progress::MetricsSink;
use cfd_model::relation::{Dict, RelationBuilder};
use cfd_model::{Cfd, Error, Relation, Result, Schema, Violation};
use std::sync::Arc;

/// One encoded operation of a batch, broadcast to every shard.
struct Op {
    id: RowId,
    codes: Vec<u32>,
    insert: bool,
}

/// An incremental violation-detection engine over streaming tuples.
///
/// Compile it from a warm [`Relation`] and a rule set (a canonical cover
/// or any list of [`Cfd`]s whose codes refer to that relation), then feed
/// it tuple batches:
///
/// * [`insert_batch`](StreamEngine::insert_batch) /
///   [`delete_batch`](StreamEngine::delete_batch) apply a batch and
///   return the violation *delta* — what was newly raised and newly
///   cleared — instead of rescanning;
/// * [`live_violations`](StreamEngine::live_violations) is always exactly
///   what [`cfd_validate::detect_violations`] would report on the
///   [`materialize`](StreamEngine::materialize)d live instance (with row
///   ids mapped through [`live_ids`](StreamEngine::live_ids));
/// * [`stats`](StreamEngine::stats) exposes per-rule support, violation
///   count and confidence at any point.
///
/// Unseen attribute values arriving mid-stream are interned with fresh
/// dictionary codes (the [`RelationBuilder::from_dicts`] hook), so the
/// engine accepts open-domain traffic. Row ids are assigned
/// monotonically and never reused; deleted rows keep their slot in the
/// (append-only) code store, which trades memory for O(1) delete — the
/// right call for a monitoring window that is periodically recompiled.
///
/// Rules are partitioned round-robin across `shards` worker threads;
/// every batch is encoded once and applied to all shards in parallel.
pub struct StreamEngine {
    schema: Schema,
    dicts: Vec<Dict>,
    rules: Vec<Cfd>,
    /// Rule display strings, resolved at compile time against the warm
    /// relation (the engine's own dictionaries only grow, so codes in
    /// `rules` stay decodable — but caching avoids re-resolving).
    rule_texts: Vec<String>,
    shards: Vec<Vec<RuleState>>,
    /// Append-only column-major code store for every row ever inserted.
    cols: Vec<Vec<u32>>,
    live: Vec<bool>,
    n_live: usize,
    /// Optional metrics sink: batch counters (`stream.*`) are emitted
    /// per applied batch. `Arc` rather than a borrow because the engine
    /// is a long-lived owner, not a per-run handle like `Control`.
    metrics: Option<Arc<dyn MetricsSink>>,
}

impl StreamEngine {
    /// Compiles `rules` against the dictionaries of `rel` and warms the
    /// indexes with every tuple of `rel`. The violations present in the
    /// warm data are reported as the `raised` half of the returned
    /// [`BatchDelta`]; warm rows get row ids `0..rel.n_rows()`.
    ///
    /// The warm start goes through the shared validation kernel: the
    /// cover is compiled into a [`cfd_validate::CoverPlan`] (one
    /// grouping pass per distinct LHS wildcard set) and every rule's
    /// index is bulk-built from its family's flat group ids, instead of
    /// replaying the warm data tuple by tuple through the incremental
    /// path with a hashed `Vec<u32>` key per row and rule.
    pub fn warm(rel: &Relation, rules: Vec<Cfd>, shards: usize) -> (StreamEngine, BatchDelta) {
        let mut engine = StreamEngine::compile(rel, rules, shards);
        let plan = cfd_validate::CoverPlan::compile(rel, &engine.rules);
        for (col, a) in engine.cols.iter_mut().zip(0..rel.arity()) {
            *col = rel.column(a).codes().to_vec();
        }
        engine.live = vec![true; rel.n_rows()];
        engine.n_live = rel.n_rows();
        let work = rel.n_rows() * engine.rules.len();
        let shards = &mut engine.shards;
        if shards.len() <= 1 || work < Self::MIN_PARALLEL_WORK {
            // same threshold as apply(): a tiny warm window is cheaper
            // to build sequentially than to spawn threads for
            for shard in shards.iter_mut() {
                warm_shard(shard, rel, &plan);
            }
        } else {
            std::thread::scope(|scope| {
                for shard in shards.iter_mut() {
                    scope.spawn(|| warm_shard(shard, rel, &plan));
                }
            });
        }
        let delta = BatchDelta {
            raised: engine.live_violations(),
            cleared: Vec::new(),
        };
        (engine, delta)
    }

    /// Compiles `rules` against the dictionaries of `rel` without
    /// inserting any tuple — the empty-window form of [`warm`].
    ///
    /// [`warm`]: StreamEngine::warm
    pub fn compile(rel: &Relation, rules: Vec<Cfd>, shards: usize) -> StreamEngine {
        let n_shards = shards.max(1).min(rules.len().max(1));
        let mut shard_rules: Vec<Vec<RuleState>> = (0..n_shards).map(|_| Vec::new()).collect();
        for (i, cfd) in rules.iter().enumerate() {
            shard_rules[i % n_shards].push(RuleState::compile(i, cfd));
        }
        let rule_texts = rules.iter().map(|c| c.display(rel)).collect();
        StreamEngine {
            schema: rel.schema().clone(),
            dicts: rel.dicts(),
            rules,
            rule_texts,
            shards: shard_rules,
            cols: vec![Vec::new(); rel.arity()],
            live: Vec::new(),
            n_live: 0,
            metrics: None,
        }
    }

    /// Attaches a metrics sink; every applied batch emits `stream.*`
    /// counters into it (see DESIGN.md §10 for the names).
    pub fn metrics_with(mut self, sink: Arc<dyn MetricsSink>) -> StreamEngine {
        self.metrics = Some(sink);
        self
    }

    /// The schema tuples must conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The compiled rules, in rule-id order.
    pub fn rules(&self) -> &[Cfd] {
        &self.rules
    }

    /// The display form of rule `r` (the paper's syntax).
    pub fn rule_text(&self, r: RuleId) -> &str {
        &self.rule_texts[r]
    }

    /// Number of rule shards (worker threads per batch).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of live tuples.
    pub fn n_live(&self) -> usize {
        self.n_live
    }

    /// Number of rows ever inserted (the next insert takes id
    /// `n_total`).
    pub fn n_total(&self) -> usize {
        self.live.len()
    }

    /// True iff row `id` exists and has not been deleted.
    pub fn is_live(&self, id: RowId) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    /// The live row ids, ascending (= insertion order).
    pub fn live_ids(&self) -> Vec<RowId> {
        (0..self.live.len() as RowId)
            .filter(|&t| self.live[t as usize])
            .collect()
    }

    /// The string values of row `id`, if it is live.
    pub fn row_values(&self, id: RowId) -> Option<Vec<&str>> {
        if !self.is_live(id) {
            return None;
        }
        Some(
            self.cols
                .iter()
                .zip(&self.dicts)
                .map(|(col, dict)| dict.value(col[id as usize]))
                .collect(),
        )
    }

    /// Encodes and inserts a batch of string tuples, returning their new
    /// row ids and the violation delta. Unseen values are interned with
    /// fresh codes; a row of the wrong width fails the whole batch
    /// before any tuple is applied.
    pub fn insert_batch<S: AsRef<str>>(
        &mut self,
        rows: &[Vec<S>],
    ) -> Result<(Vec<RowId>, BatchDelta)> {
        let arity = self.schema.arity();
        for row in rows {
            if row.len() != arity {
                return Err(Error::Relation(format!(
                    "streamed row has {} values, schema has arity {arity}",
                    row.len()
                )));
            }
        }
        let coded: Vec<Vec<u32>> = rows
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&mut self.dicts)
                    .map(|(v, dict)| dict.intern(v.as_ref()))
                    .collect()
            })
            .collect();
        let first = self.live.len() as RowId;
        let ids = (first..first + rows.len() as RowId).collect();
        let delta = self.insert_coded(coded);
        Ok((ids, delta))
    }

    /// Inserts pre-encoded rows (codes must be valid for the engine's
    /// dictionaries). Used by [`warm`](StreamEngine::warm) and the
    /// generators in benches.
    pub fn insert_coded(&mut self, rows: Vec<Vec<u32>>) -> BatchDelta {
        let ops: Vec<Op> = rows
            .into_iter()
            .map(|codes| {
                debug_assert_eq!(codes.len(), self.schema.arity());
                debug_assert!(codes
                    .iter()
                    .zip(&self.dicts)
                    .all(|(&c, d)| (c as usize) < d.len()));
                let id = self.live.len() as RowId;
                for (col, &c) in self.cols.iter_mut().zip(&codes) {
                    col.push(c);
                }
                self.live.push(true);
                self.n_live += 1;
                Op {
                    id,
                    codes,
                    insert: true,
                }
            })
            .collect();
        self.apply(&ops)
    }

    /// Deletes a batch of live rows by id, returning the violation
    /// delta. Unknown or already-deleted ids fail the whole batch before
    /// any tuple is applied; a duplicate id within the batch is likewise
    /// rejected.
    pub fn delete_batch(&mut self, ids: &[RowId]) -> Result<BatchDelta> {
        let mut seen = cfd_model::FxHashSet::default();
        for &id in ids {
            if !self.is_live(id) {
                return Err(Error::Relation(format!("row {id} is not live")));
            }
            if !seen.insert(id) {
                return Err(Error::Relation(format!("row {id} deleted twice in batch")));
            }
        }
        let ops: Vec<Op> = ids
            .iter()
            .map(|&id| {
                self.live[id as usize] = false;
                self.n_live -= 1;
                Op {
                    id,
                    codes: self.cols.iter().map(|col| col[id as usize]).collect(),
                    insert: false,
                }
            })
            .collect();
        Ok(self.apply(&ops))
    }

    /// Below this many `op × rule` applications a batch is applied
    /// sequentially even when sharded: per-rule work is sub-microsecond
    /// hash updates, so spawning OS threads for a tiny batch costs more
    /// than it saves. (A persistent worker pool would lower the
    /// crossover; this keeps the engine dependency-free for now.)
    const MIN_PARALLEL_WORK: usize = 2048;

    /// Applies encoded ops to every shard (in parallel when more than
    /// one and the batch is big enough to amortize thread spawns) and
    /// coalesces the transitions into the batch's net delta.
    fn apply(&mut self, ops: &[Op]) -> BatchDelta {
        if ops.is_empty() {
            return BatchDelta::default();
        }
        let _sp = cfd_obs::span!("stream.apply_batch");
        let work = ops.len() * self.rules.len();
        let events: Vec<Event> = if self.shards.len() <= 1 || work < Self::MIN_PARALLEL_WORK {
            let mut out = Vec::new();
            for shard in &mut self.shards {
                apply_shard(shard, ops, &mut out);
            }
            out
        } else {
            let chunks: Vec<Vec<Event>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|shard| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            apply_shard(shard, ops, &mut out);
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            chunks.into_iter().flatten().collect()
        };
        let delta = coalesce(events);
        if let Some(m) = &self.metrics {
            m.add("stream.batches", 1);
            m.add(
                "stream.inserts",
                ops.iter().filter(|o| o.insert).count() as u64,
            );
            m.add(
                "stream.deletes",
                ops.iter().filter(|o| !o.insert).count() as u64,
            );
            m.add("stream.raised", delta.raised.len() as u64);
            m.add("stream.cleared", delta.cleared.len() as u64);
            m.observe("stream.batch_rows", ops.len() as u64);
            m.set_gauge("stream.live_rows", self.n_live as u64);
        }
        delta
    }

    /// The current live violation set, sorted by `(rule, violation)`.
    /// Row ids are engine row ids; see [`materialize`] for the mapping
    /// to a scan of the live instance.
    ///
    /// [`materialize`]: StreamEngine::materialize
    pub fn live_violations(&self) -> Vec<(RuleId, Violation)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for rule in shard {
                rule.live_violations(&mut out);
            }
        }
        out.sort_unstable();
        out
    }

    /// Current per-rule counters, in rule-id order.
    pub fn stats(&self) -> Vec<RuleStats> {
        let mut out: Vec<RuleStats> = self.shards.iter().flatten().map(|r| r.stats()).collect();
        out.sort_unstable_by_key(|s| s.rule);
        out
    }

    /// The compiled per-rule states across all shards, in no
    /// particular order (callers sort by rule id when it matters).
    pub(crate) fn rule_states(&self) -> impl Iterator<Item = &RuleState> {
        self.shards.iter().flatten()
    }

    /// The attached metrics sink, if any — shared with
    /// [`crate::remine`] so re-mining counters land next to the
    /// `stream.*` batch counters.
    pub(crate) fn metrics_sink(&self) -> Option<&Arc<dyn MetricsSink>> {
        self.metrics.as_ref()
    }

    /// Atomically swaps part of the cover: rules named in `retired`
    /// are dropped, `replacement` rules (codes referring to the
    /// engine's dictionaries) are appended, and every surviving rule is
    /// recompiled into fresh per-rule indexes via the same
    /// [`cfd_validate::CoverPlan`] bulk warm path
    /// [`warm`](StreamEngine::warm) uses — no per-tuple replay. The new
    /// state is fully built before anything is installed, so a panic
    /// mid-build leaves no half-swapped cover, and no batch can observe
    /// a partial rule set.
    ///
    /// Rule ids are reassigned: kept rules keep their relative order
    /// and take ids `0..kept`, replacements follow. The returned delta
    /// reports `cleared` as the retired rules' live violations (under
    /// their *old* ids) and `raised` as the replacements' live
    /// violations (under their *new* ids); kept rules' violations
    /// persist verbatim, only renumbered.
    pub fn apply_cover_delta(&mut self, retired: &[RuleId], replacement: Vec<Cfd>) -> BatchDelta {
        let retired_set: cfd_model::FxHashSet<RuleId> = retired.iter().copied().collect();
        let cleared: Vec<(RuleId, Violation)> = self
            .live_violations()
            .into_iter()
            .filter(|(r, _)| retired_set.contains(r))
            .collect();
        let mut new_rules: Vec<Cfd> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(i, _)| !retired_set.contains(i))
            .map(|(_, c)| c.clone())
            .collect();
        let n_kept = new_rules.len();
        new_rules.extend(replacement);

        let live = self.materialize();
        let live_ids = self.live_ids();
        let n_shards = self.shards.len().max(1).min(new_rules.len().max(1));
        let mut shards: Vec<Vec<RuleState>> = (0..n_shards).map(|_| Vec::new()).collect();
        for (i, cfd) in new_rules.iter().enumerate() {
            shards[i % n_shards].push(RuleState::compile(i, cfd));
        }
        let plan = cfd_validate::CoverPlan::compile(&live, &new_rules);
        let work = live.n_rows() * new_rules.len();
        if shards.len() <= 1 || work < Self::MIN_PARALLEL_WORK {
            for shard in shards.iter_mut() {
                rebuild_shard(shard, &live, &plan, &live_ids);
            }
        } else {
            std::thread::scope(|scope| {
                for shard in shards.iter_mut() {
                    scope.spawn(|| rebuild_shard(shard, &live, &plan, &live_ids));
                }
            });
        }
        // install: three plain moves, nothing can fail past this point
        self.rule_texts = new_rules.iter().map(|c| c.display(&live)).collect();
        self.rules = new_rules;
        self.shards = shards;

        let raised: Vec<(RuleId, Violation)> = self
            .live_violations()
            .into_iter()
            .filter(|&(r, _)| r >= n_kept)
            .collect();
        if let Some(m) = &self.metrics {
            m.add("stream.recompiles", 1);
            m.set_gauge("stream.rules", self.rules.len() as u64);
        }
        BatchDelta { raised, cleared }
    }

    /// Materializes the live tuples as a [`Relation`] (insertion order,
    /// dictionaries shared with the engine). Batch-scanning it with
    /// [`cfd_validate::detect_violations`] and mapping dense row
    /// ids through [`live_ids`](StreamEngine::live_ids) reproduces
    /// [`live_violations`](StreamEngine::live_violations) exactly — the
    /// reconciliation the test suite performs.
    pub fn materialize(&self) -> Relation {
        let mut b = RelationBuilder::from_dicts(self.schema.clone(), self.dicts.clone())
            .expect("engine dictionaries match its schema");
        let mut row = vec![0u32; self.schema.arity()];
        for id in 0..self.live.len() {
            if !self.live[id] {
                continue;
            }
            for (v, col) in row.iter_mut().zip(&self.cols) {
                *v = col[id];
            }
            b.push_coded_row(&row).expect("row width is the arity");
        }
        b.finish()
    }
}

/// Bulk-builds one shard's rule indexes from the compiled plan's family
/// group ids.
fn warm_shard(shard: &mut [RuleState], rel: &Relation, plan: &cfd_validate::CoverPlan) {
    for rule in shard.iter_mut() {
        let gids = plan.family_of(rule.rule).map(|f| plan.group_ids(f).gids());
        rule.warm_from(rel, gids);
    }
}

/// Bulk-builds one shard's rule indexes against the dense materialized
/// live instance, then remaps dense row ids back to engine row ids —
/// the cover-swap counterpart of [`warm_shard`].
fn rebuild_shard(
    shard: &mut [RuleState],
    live: &Relation,
    plan: &cfd_validate::CoverPlan,
    live_ids: &[RowId],
) {
    for rule in shard.iter_mut() {
        let gids = plan.family_of(rule.rule).map(|f| plan.group_ids(f).gids());
        rule.warm_from(live, gids);
        rule.remap_ids(live_ids);
    }
}

fn apply_shard(shard: &mut [RuleState], ops: &[Op], out: &mut Vec<Event>) {
    for op in ops {
        for rule in shard.iter_mut() {
            if op.insert {
                rule.insert(op.id, &op.codes, out);
            } else {
                rule.delete(op.id, &op.codes, out);
            }
        }
    }
}
