//! Property-based tests for the free/closed item-set miner against the
//! Section 3.1 definitions, on arbitrary small relations.

use cfd_itemset::mine::{mine_free_closed, MineOptions};
use cfd_itemset::ClosedSetIndex;
use cfd_model::pattern::{PVal, Pattern};
use cfd_model::relation::{Relation, RelationBuilder};
use cfd_model::schema::Schema;
use cfd_model::support::pattern_support;
use proptest::prelude::*;

fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..=4, 1usize..=14)
        .prop_flat_map(|(arity, rows)| {
            proptest::collection::vec(proptest::collection::vec(0u32..3, arity), rows)
        })
        .prop_map(|rows| {
            let arity = rows[0].len();
            let schema = Schema::new((0..arity).map(|i| format!("A{i}"))).unwrap();
            let mut b = RelationBuilder::new(schema);
            for row in &rows {
                b.push_coded_row(row).unwrap();
            }
            b.finish()
        })
}

/// All distinct constant patterns realized by some tuple, per attr subset.
fn realized_patterns(rel: &Relation) -> Vec<Pattern> {
    let mut out = std::collections::HashSet::new();
    for attrs in cfd_model::attrset::AttrSet::full(rel.arity()).subsets() {
        for t in rel.tuples() {
            out.insert(Pattern::from_pairs(
                attrs.iter().map(|a| (a, PVal::Const(rel.code(t, a)))),
            ));
        }
    }
    out.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mined_sets_satisfy_the_definitions(rel in arb_relation(), k in 1usize..=3) {
        let mined = mine_free_closed(&rel, k, MineOptions::default());
        let all = realized_patterns(&rel);
        for f in &mined.free {
            let supp = pattern_support(&rel, &f.pattern);
            prop_assert_eq!(supp, f.support as usize);
            prop_assert!(supp >= k);
            // freeness: no strictly more general pattern has equal support
            for q in all.iter().filter(|q| *q != &f.pattern && f.pattern.contains_pattern(q)) {
                prop_assert!(pattern_support(&rel, q) > supp,
                    "{:?} not free: {:?} has equal support", f.pattern, q);
            }
            // tidsets really are the matching rows
            let want: Vec<u32> = f.pattern.matching_rows(&rel);
            prop_assert_eq!(f.tids(), &want[..]);
        }
        for c in &mined.closed {
            let supp = pattern_support(&rel, &c.pattern);
            prop_assert_eq!(supp, c.support as usize);
            // closedness: no strictly larger realized pattern with equal support
            for q in all.iter().filter(|q| *q != &c.pattern && q.contains_pattern(&c.pattern)) {
                prop_assert!(pattern_support(&rel, q) < supp,
                    "{:?} not closed: {:?} has equal support", c.pattern, q);
            }
        }
    }

    #[test]
    fn completeness_every_frequent_free_pattern_is_mined(
        rel in arb_relation(), k in 1usize..=2
    ) {
        let mined = mine_free_closed(&rel, k, MineOptions::default());
        let all = realized_patterns(&rel);
        for p in &all {
            let supp = pattern_support(&rel, p);
            if supp < k { continue; }
            let free = all
                .iter()
                .filter(|q| *q != p && p.contains_pattern(q))
                .all(|q| pattern_support(&rel, q) > supp);
            if free {
                prop_assert!(mined.is_free(p), "missing free set {p:?}");
            } else {
                prop_assert!(!mined.is_free(p), "non-free {p:?} mined as free");
            }
        }
    }

    #[test]
    fn c2f_links_generators_to_their_closure(rel in arb_relation(), k in 1usize..=3) {
        let mined = mine_free_closed(&rel, k, MineOptions::default());
        for (ci, gens) in mined.c2f.iter().enumerate() {
            for &fi in gens {
                let f = &mined.free[fi as usize];
                prop_assert_eq!(f.closure as usize, ci);
                let clo = &mined.closed[ci].pattern;
                prop_assert!(clo.contains_pattern(&f.pattern));
                prop_assert_eq!(mined.closed[ci].support, f.support);
            }
        }
    }

    #[test]
    fn index_containment_matches_linear_scan(rel in arb_relation()) {
        let mined = mine_free_closed(&rel, 2, MineOptions::default());
        let idx = ClosedSetIndex::build(&mined);
        for f in mined.free.iter().take(20) {
            let got: std::collections::BTreeSet<u32> =
                idx.containing(&f.pattern).into_iter().collect();
            let want: std::collections::BTreeSet<u32> = mined
                .closed
                .iter()
                .enumerate()
                .filter(|(_, c)| c.pattern.contains_pattern(&f.pattern))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn free_only_off_is_a_superset(rel in arb_relation(), k in 1usize..=2) {
        let free = mine_free_closed(&rel, k, MineOptions::default());
        let all = mine_free_closed(
            &rel,
            k,
            MineOptions { free_only: false, ..MineOptions::default() },
        );
        prop_assert!(all.free.len() >= free.free.len());
        for f in &free.free {
            prop_assert!(
                all.free.iter().any(|g| g.pattern == f.pattern),
                "free set {:?} missing from the all-frequent mining", f.pattern
            );
        }
    }
}

#[cfg(test)]
mod threaded_mining {
    use cfd_datagen::random::RandomRelation;
    use cfd_itemset::mine::{mine_free_closed, MineOptions};

    /// The mined result is identical at every thread count (chunked
    /// closures + sharded deep-level joins merge in input order).
    #[test]
    fn thread_count_does_not_change_the_mined_sets() {
        for seed in 0..6 {
            let rel = RandomRelation::small(seed).generate();
            for k in [1, 2] {
                let serial = mine_free_closed(&rel, k, MineOptions::default());
                for threads in [2, 4] {
                    let sharded = mine_free_closed(
                        &rel,
                        k,
                        MineOptions {
                            threads,
                            ..MineOptions::default()
                        },
                    );
                    assert_eq!(serial.free.len(), sharded.free.len());
                    for (a, b) in serial.free.iter().zip(&sharded.free) {
                        assert_eq!(a.pattern, b.pattern, "seed {seed} k {k} t {threads}");
                        assert_eq!(a.support, b.support);
                        assert_eq!(a.tids(), b.tids());
                        assert_eq!(a.closure, b.closure);
                    }
                    assert_eq!(serial.closed.len(), sharded.closed.len());
                    for (a, b) in serial.closed.iter().zip(&sharded.closed) {
                        assert_eq!(a.pattern, b.pattern);
                        assert_eq!(a.support, b.support);
                    }
                    assert_eq!(serial.c2f, sharded.c2f);
                }
            }
        }
    }
}
