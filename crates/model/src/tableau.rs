//! Tableau CFDs (Section 2.3 of the paper).
//!
//! The original CFD definition \[1\] allows a *pattern tableau*: a CFD
//! `φ = (X → A, Tp)` with a finite set `Tp` of pattern tuples, satisfied
//! iff every single-pattern CFD `(X → A, tp)`, `tp ∈ Tp`, is satisfied.
//! The paper reduces discovery to single-pattern CFDs and notes that
//! k-frequent minimal tableau CFDs are obtained by *grouping* the
//! single-pattern results; the support of a tableau CFD is the minimum
//! support of its members, and its tableau is maximal subject to the
//! non-subsumption condition: no two pattern tuples `sp, tp ∈ Tp` with
//! `sp[X] ⪯ tp[X]` and `sp[A] ⪯ tp[A]` (one row would subsume the
//! other). This module implements that grouping.

use crate::cfd::Cfd;
use crate::cover::CanonicalCover;
use crate::fxhash::FxHashMap;
use crate::pattern::{PVal, Pattern};
use crate::relation::Relation;
use crate::satisfy::satisfies;
use crate::schema::AttrId;
use crate::support::support;

/// A tableau CFD `(X → A, Tp)`: one embedded FD with a pattern tableau.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableauCfd {
    lhs_attrs: crate::attrset::AttrSet,
    rhs_attr: AttrId,
    /// The tableau rows, each as `(LHS pattern, RHS value)`.
    rows: Vec<(Pattern, PVal)>,
}

impl TableauCfd {
    /// The LHS attribute set `X`.
    pub fn lhs_attrs(&self) -> crate::attrset::AttrSet {
        self.lhs_attrs
    }

    /// The RHS attribute `A`.
    pub fn rhs_attr(&self) -> AttrId {
        self.rhs_attr
    }

    /// The tableau rows.
    pub fn rows(&self) -> &[(Pattern, PVal)] {
        &self.rows
    }

    /// The member single-pattern CFDs `{φ_tp | tp ∈ Tp}`.
    pub fn members(&self) -> impl Iterator<Item = Cfd> + '_ {
        self.rows
            .iter()
            .map(move |(lhs, rhs)| Cfd::new(lhs.clone(), self.rhs_attr, *rhs))
    }

    /// `r ⊨ (X → A, Tp)` iff every member holds.
    pub fn satisfied_by(&self, rel: &Relation) -> bool {
        self.members().all(|c| satisfies(rel, &c))
    }

    /// `sup(φ) = min_{tp ∈ Tp} sup(φ_tp)` (Section 2.3).
    pub fn support(&self, rel: &Relation) -> usize {
        self.members().map(|c| support(rel, &c)).min().unwrap_or(0)
    }

    /// Renders the tableau in a tabular form.
    pub fn display(&self, rel: &Relation) -> String {
        let schema = rel.schema();
        let mut out = format!(
            "({} -> {}) tableau:\n",
            schema.fmt_attrs(self.lhs_attrs),
            schema.name(self.rhs_attr)
        );
        for (lhs, rhs) in &self.rows {
            out.push_str("  (");
            for (i, (a, v)) in lhs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match v {
                    PVal::Const(c) => out.push_str(rel.column(a).dict().value(c)),
                    PVal::Var => out.push('_'),
                }
            }
            out.push_str(" || ");
            match *rhs {
                PVal::Const(c) => out.push_str(rel.column(self.rhs_attr).dict().value(c)),
                PVal::Var => out.push('_'),
            }
            out.push_str(")\n");
        }
        out
    }
}

/// Groups a canonical cover of single-pattern CFDs into tableau CFDs:
/// one tableau per embedded FD `X → A`. Minimality of the inputs
/// guarantees the non-subsumption condition of Section 2.3 between rows
/// (two minimal patterns over the same FD never subsume each other), so
/// each resulting tableau is maximal w.r.t. the cover it came from.
pub fn group_into_tableaux(cover: &CanonicalCover) -> Vec<TableauCfd> {
    let mut by_fd: FxHashMap<(crate::attrset::AttrSet, AttrId), Vec<(Pattern, PVal)>> =
        FxHashMap::default();
    for cfd in cover.iter() {
        by_fd
            .entry((cfd.lhs_attrs(), cfd.rhs_attr()))
            .or_default()
            .push((cfd.lhs().clone(), cfd.rhs_val()));
    }
    let mut out: Vec<TableauCfd> = by_fd
        .into_iter()
        .map(|((lhs_attrs, rhs_attr), mut rows)| {
            rows.sort_unstable();
            TableauCfd {
                lhs_attrs,
                rhs_attr,
                rows,
            }
        })
        .collect();
    out.sort_unstable_by_key(|t| (t.lhs_attrs, t.rhs_attr));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfd::parse_cfd;
    use crate::relation::relation_from_rows;
    use crate::schema::Schema;

    fn cust() -> Relation {
        let schema = Schema::new(["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"]).unwrap();
        relation_from_rows(
            schema,
            &[
                vec!["01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"],
                vec!["01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"],
                vec!["01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"],
                vec!["01", "908", "2222222", "Jim", "Elm Str.", "MH", "07974"],
                vec!["44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"],
                vec!["44", "131", "2222222", "Ian", "High St.", "EDI", "EH4 1DT"],
                vec!["44", "908", "2222222", "Ian", "Port PI", "MH", "W1B 1JH"],
                vec!["01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn grouping_by_embedded_fd() {
        let r = cust();
        let cover = CanonicalCover::from_cfds([
            parse_cfd(&r, "(AC -> CT, (908 || MH))").unwrap(),
            parse_cfd(&r, "(AC -> CT, (212 || NYC))").unwrap(),
            parse_cfd(&r, "([CC, AC] -> CT, (44, 131 || EDI))").unwrap(),
        ]);
        let tableaux = group_into_tableaux(&cover);
        assert_eq!(tableaux.len(), 2);
        let ac_ct = tableaux
            .iter()
            .find(|t| t.lhs_attrs() == crate::attrset::AttrSet::singleton(1))
            .unwrap();
        assert_eq!(ac_ct.rows().len(), 2);
        assert!(ac_ct.satisfied_by(&r));
        // support = min member support = min(4, 1) = 1
        assert_eq!(ac_ct.support(&r), 1);
    }

    #[test]
    fn satisfaction_is_conjunction_of_members() {
        let r = cust();
        let good = parse_cfd(&r, "(AC -> CT, (908 || MH))").unwrap();
        let bad = parse_cfd(&r, "(AC -> CT, (131 || EDI))").unwrap(); // t8 violates
        let cover = CanonicalCover::from_cfds([good, bad]);
        let tableaux = group_into_tableaux(&cover);
        assert_eq!(tableaux.len(), 1);
        assert!(!tableaux[0].satisfied_by(&r), "one bad member sinks it");
    }

    #[test]
    fn display_lists_rows() {
        let r = cust();
        let cover = CanonicalCover::from_cfds([
            parse_cfd(&r, "(AC -> CT, (908 || MH))").unwrap(),
            parse_cfd(&r, "(AC -> CT, (_ || _))").unwrap(),
        ]);
        let t = &group_into_tableaux(&cover)[0];
        let s = t.display(&r);
        assert!(s.contains("[AC] -> CT"));
        assert!(s.contains("(908 || MH)"));
        assert!(s.contains("(_ || _)"));
    }

    #[test]
    fn empty_cover_gives_no_tableaux() {
        assert!(group_into_tableaux(&CanonicalCover::default()).is_empty());
    }
}
