//! A minimal FxHash implementation (the same multiply-xor scheme used by
//! `rustc-hash`), so that hot hash maps keyed by small integers and bitsets
//! do not pay the SipHash cost. Kept in-house to stay dependency-free; the
//! algorithm is ~20 lines and HashDoS resistance is irrelevant for an
//! in-memory mining workload.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` specialised to FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` specialised to FxHash.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn hasher_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"conditional functional dependency");
        b.write(b"conditional functional dependency");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn unaligned_tail_is_hashed() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"123456789");
        b.write(b"123456788");
        assert_ne!(a.finish(), b.finish());
    }
}
