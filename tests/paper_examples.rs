//! End-to-end validation of every checkable claim in the paper's running
//! examples (Examples 1–9, Figures 1–4), through the public API.

use cfd_suite::datagen::cust::cust_relation;
use cfd_suite::prelude::*;

fn cfd(rel: &Relation, txt: &str) -> Cfd {
    parse_cfd(rel, txt).unwrap_or_else(|e| panic!("cannot parse {txt:?}: {e}"))
}

/// Example 1: the FDs f1, f2 and the CFDs φ0–φ3 hold on r0.
#[test]
fn example1_rules_hold() {
    let r = cust_relation();
    for txt in [
        "([CC, AC] -> CT, (_, _ || _))",
        "([CC, AC, PN] -> STR, (_, _, _ || _))",
        "([CC, ZIP] -> STR, (44, _ || _))",
        "([CC, AC] -> CT, (01, 908 || MH))",
        "([CC, AC] -> CT, (44, 131 || EDI))",
        "([CC, AC] -> CT, (01, 212 || NYC))",
    ] {
        assert!(satisfies(&r, &cfd(&r, txt)), "{txt}");
    }
}

/// Example 3: ψ and ψ′ are violated; ψ′ by a single tuple.
#[test]
fn example3_violations() {
    let r = cust_relation();
    let psi = cfd(&r, "([CC, ZIP] -> STR, (_, _ || _))");
    assert!(!satisfies(&r, &psi));
    let v = violations(&r, &psi);
    assert!(v.contains(&Violation::Pair(0, 3)), "t1,t4 violate ψ: {v:?}");

    let psi2 = cfd(&r, "(AC -> CT, (131 || EDI))");
    assert_eq!(violations(&r, &psi2), vec![Violation::Single(7)]);
}

/// Example 4: classification of the Example 1 rules.
#[test]
fn example4_classification() {
    let r = cust_relation();
    for txt in [
        "([CC, AC] -> CT, (_, _ || _))",
        "([CC, AC, PN] -> STR, (_, _, _ || _))",
        "([CC, ZIP] -> STR, (44, _ || _))",
    ] {
        assert_eq!(cfd(&r, txt).class(), CfdClass::Variable, "{txt}");
    }
    for txt in [
        "([CC, AC] -> CT, (01, 908 || MH))",
        "([CC, AC] -> CT, (44, 131 || EDI))",
        "([CC, AC] -> CT, (01, 212 || NYC))",
    ] {
        assert_eq!(cfd(&r, txt).class(), CfdClass::Constant, "{txt}");
    }
}

/// Section 2.2.2: support counts of φ1, φ2, f1, f2.
#[test]
fn support_claims() {
    let r = cust_relation();
    assert_eq!(
        support(&r, &cfd(&r, "([CC, AC] -> CT, (01, 908 || MH))")),
        3
    );
    assert_eq!(
        support(&r, &cfd(&r, "([CC, AC] -> CT, (44, 131 || EDI))")),
        2
    );
    assert_eq!(support(&r, &cfd(&r, "([CC, AC] -> CT, (_, _ || _))")), 8);
    assert_eq!(
        support(&r, &cfd(&r, "([CC, AC, PN] -> STR, (_, _, _ || _))")),
        8
    );
}

/// Example 5 / Example 7: minimality claims, through full discovery.
#[test]
fn example5_and_7_minimality_via_discovery() {
    let r = cust_relation();
    let cover = FastCfd::new(1).discover(&r);
    // minimal rules present
    for txt in [
        "([CC, AC] -> CT, (_, _ || _))",         // f1
        "([CC, AC, PN] -> STR, (_, _, _ || _))", // f2
        "([CC, ZIP] -> STR, (44, _ || _))",      // φ0
        "([CC, AC] -> CT, (44, 131 || EDI))",    // φ2
        "(AC -> CT, (908 || MH))",               // Example 7 reduction of φ1
        "(AC -> CT, (212 || NYC))",              // Example 5 reduction of φ3
    ] {
        assert!(cover.contains(&cfd(&r, txt)), "{txt} must be discovered");
    }
    // non-minimal rules absent: φ1, φ3, and the five f1-specializations
    for txt in [
        "([CC, AC] -> CT, (01, 908 || MH))",
        "([CC, AC] -> CT, (01, 212 || NYC))",
        "([CC, AC] -> CT, (01, _ || _))",
        "([CC, AC] -> CT, (44, _ || _))",
        "([CC, AC] -> CT, (_, 908 || _))",
        "([CC, AC] -> CT, (_, 212 || _))",
        "([CC, AC] -> CT, (_, 131 || _))",
    ] {
        assert!(!cover.contains(&cfd(&r, txt)), "{txt} must be excluded");
    }
}

/// Example 7: (AC → CT, (908 ‖ MH)) is a 4-frequent left-reduced constant
/// CFD, discovered by CFDMiner at k = 4 but φ1 is not.
#[test]
fn example7_cfdminer() {
    let r = cust_relation();
    let red = cfd(&r, "(AC -> CT, (908 || MH))");
    assert_eq!(support(&r, &red), 4);
    let cover4 = CfdMiner::new(4).discover(&r);
    assert!(cover4.contains(&red));
    // at k = 5 it is gone
    let cover5 = CfdMiner::new(5).discover(&r);
    assert!(!cover5.contains(&red));
}

/// Example 8: the CFDs CTANE finds at support threshold 3 (point C of
/// Fig. 3), plus the (CC,AC) pruning observation at point B.
#[test]
fn example8_ctane_run() {
    let r = cust_relation();
    let cover = Ctane::new(3).discover(&r);
    for txt in [
        "(ZIP -> CC, (07974 || 01))",
        "(ZIP -> AC, (07974 || 908))",
        "(STR -> ZIP, (_ || _))",
    ] {
        assert!(cover.contains(&cfd(&r, txt)), "{txt}");
    }
    // point B: the pair (CC,AC) = (44, ·) is not 3-frequent
    let p44 = cfd(&r, "([CC, AC] -> CT, (44, 131 || EDI))");
    assert_eq!(support(&r, &p44), 2);
    assert!(!cover.contains(&p44));
}

/// Example 9, point (C): ([CC,AC] → STR, (44, _ ‖ _)) is a minimal CFD at
/// k = 2; point (B)/(D): the φ′ and φ″ candidates are rejected.
#[test]
fn example9_fastcfd_run() {
    let r = cust_relation();
    let cover = FastCfd::new(2).discover(&r);
    let point_c = cfd(&r, "([CC, AC] -> STR, (44, _ || _))");
    assert!(cover.contains(&point_c), "cover:\n{}", cover.display(&r));
    // φ′ = ([CC,AC,PN] → STR, (01,_,_ ‖ _)) is subsumed by f2
    let phi_p = cfd(&r, "([CC, AC, PN] -> STR, (01, _, _ || _))");
    assert!(satisfies(&r, &phi_p));
    assert!(!cover.contains(&phi_p));
    // φ″ = ([CC,AC,PN] → STR, (01,908,_ ‖ _)) likewise
    let phi_pp = cfd(&r, "([CC, AC, PN] -> STR, (01, 908, _ || _))");
    assert!(satisfies(&r, &phi_pp));
    assert!(!cover.contains(&phi_pp));
    // f2 itself is in the cover
    assert!(cover.contains(&cfd(&r, "([CC, AC, PN] -> STR, (_, _, _ || _))")));
}

/// Lemma 1: normalization of constant-RHS CFDs with wildcard LHS values.
#[test]
fn lemma1_normalization() {
    let r = cust_relation();
    let mixed = cfd(&r, "([CC, AC] -> CT, (_, 908 || MH))");
    let norm = normalize_cfd(&mixed);
    assert_eq!(norm, cfd(&r, "(AC -> CT, (908 || MH))"));
    // equivalence: both hold or both fail together on r0 and on the
    // dirty variant
    let dirty = cfd_suite::datagen::cust::dirty_cust_relation();
    assert_eq!(satisfies(&r, &mixed), satisfies(&r, &norm));
    let mixed_d = cfd(&dirty, "([CC, AC] -> CT, (_, 908 || MH))");
    let norm_d = normalize_cfd(&mixed_d);
    assert_eq!(satisfies(&dirty, &mixed_d), satisfies(&dirty, &norm_d));
}

/// The quickstart of the README, kept honest.
#[test]
fn quickstart_flow() {
    let rel = cust_relation();
    let cover = FastCfd::new(2).discover(&rel);
    assert!(cover.iter().all(|c| satisfies(&rel, c)));
    let constants = CfdMiner::new(2).discover(&rel);
    assert_eq!(constants.cfds(), cover.constant_cover().cfds());
    let (n_const, n_var) = cover.counts();
    assert_eq!(n_const + n_var, cover.len());
}
