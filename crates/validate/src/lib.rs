//! # cfd-validate
//!
//! The shared validation kernel: compile a CFD cover **once** into an
//! execution plan, then validate whole relations in one (parallel)
//! pass — the serving substrate behind `cfd check`, `cfd repair`, the
//! examples, and the streaming engine's warm start.
//!
//! The per-rule primitives in [`cfd_model`] (`satisfies`, `violations`,
//! `suggest_repairs`) re-scan the relation per rule with heap-allocated
//! group keys: applying a realistic cover that way is
//! `O(|Σ| · |r|)` with heavy constant factors. The kernel instead:
//!
//! 1. groups the cover's variable rules by their LHS wildcard attribute
//!    set and runs **one** dense grouping pass per distinct set
//!    ([`cfd_partition::GroupIds`], flat `u64` keys);
//! 2. drives each rule's scan by the smallest value region of its LHS
//!    constants (the cached [`cfd_partition::RelationIndex`]), so
//!    selective rules never touch the rest of the relation;
//! 3. shards rules across worker threads and merges reports in rule
//!    order, so the result is independent of the thread count.
//!
//! The report semantics are exactly the per-rule reference's: same
//! witnesses, same violations in the same order, same support /
//! confidence counters as the streaming engine — a contract the
//! property tests in `tests/reconcile.rs` check on randomized covers
//! and dirty instances.
//!
//! ```
//! use cfd_model::cfd::parse_cfd;
//! use cfd_model::csv::relation_from_csv_str;
//! use cfd_validate::{validate, ValidateOptions};
//!
//! let rel = relation_from_csv_str("AC,CT\n908,MH\n908,MH\n131,EDI\n131,UN\n").unwrap();
//! let rules = vec![
//!     parse_cfd(&rel, "(AC -> CT, (908 || MH))").unwrap(),
//!     parse_cfd(&rel, "(AC -> CT, (_ || _))").unwrap(),
//! ];
//! let report = validate(&rel, &rules, &ValidateOptions::default());
//! assert!(report.rules[0].satisfied());
//! assert_eq!(report.rules[1].violations, 1); // 131 maps to EDI and UN
//! assert_eq!(report.rules[1].support(), 4);
//! assert_eq!(report.rules[1].confidence(), 0.75); // drop one of the two
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod repair;
pub mod report;

pub use plan::{
    measure_cover, validate, validate_indexed, validate_with, CoverPlan, ValidateOptions,
};
pub use repair::suggest_repairs_for_cover;
pub use report::{RuleReport, ValidationReport};

use cfd_model::relation::Relation;
use cfd_model::{Cfd, Violation};

/// Checks `r ⊨ Σ` for a whole rule set through the kernel — one
/// grouping pass per distinct LHS wildcard set instead of one scan per
/// rule, and an early exit at the first violation met (a dirty
/// instance answers without finishing the scan, like the per-rule
/// reference would).
pub fn satisfies_cover<'a, I>(rel: &Relation, cfds: I) -> bool
where
    I: IntoIterator<Item = &'a Cfd>,
{
    CoverPlan::compile(rel, cfds).holds(rel)
}

/// Scans a rule set against an instance, returning `(rule index,
/// violation)` pairs — the basic primitive of a CFD-based cleaning
/// pass, now kernel-backed.
///
/// The rules' dictionary codes must refer to `rel`'s dictionaries: use
/// the same relation they were discovered on, a dictionary-sharing copy
/// (`restrict`/`project`/`with_replaced_codes`/`with_replaced_values`),
/// or re-resolve foreign rules with [`cfd_model::cfd::transfer_cfd`]
/// first.
pub fn detect_violations<'a, I>(rel: &Relation, cfds: I) -> Vec<(usize, Violation)>
where
    I: IntoIterator<Item = &'a Cfd>,
{
    validate(rel, cfds, &ValidateOptions::default()).detect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_model::cfd::parse_cfd;
    use cfd_model::relation::{relation_from_rows, Relation};
    use cfd_model::satisfy::satisfies;
    use cfd_model::violation::violations;
    use cfd_model::Schema;

    /// The instance r0 of Fig. 1 of the paper (the `cust` relation).
    fn cust() -> Relation {
        let schema = Schema::new(["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"]).unwrap();
        relation_from_rows(
            schema,
            &[
                vec!["01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"],
                vec!["01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"],
                vec!["01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"],
                vec!["01", "908", "2222222", "Jim", "Elm Str.", "MH", "07974"],
                vec!["44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"],
                vec!["44", "131", "2222222", "Ian", "High St.", "EDI", "EH4 1DT"],
                vec!["44", "908", "2222222", "Ian", "Port PI", "MH", "W1B 1JH"],
                vec!["01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"],
            ],
        )
        .unwrap()
    }

    fn rules(r: &Relation) -> Vec<cfd_model::Cfd> {
        [
            "([CC, ZIP] -> STR, (_, _ || _))",       // ψ — violated by (t1, t4)
            "(AC -> CT, (131 || EDI))",              // ψ′ — violated by t8
            "([CC, AC] -> CT, (01, 908 || MH))",     // φ1 — holds
            "([CC, AC] -> CT, (_, _ || _))",         // f1 as CFD — holds
            "([CC, AC, PN] -> STR, (_, _, _ || _))", // f2 — holds
        ]
        .iter()
        .map(|t| parse_cfd(r, t).unwrap())
        .collect()
    }

    #[test]
    fn report_matches_reference_on_paper_example() {
        let r = cust();
        let rules = rules(&r);
        for threads in [1, 4] {
            let report = validate(
                &r,
                &rules,
                &ValidateOptions {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(report.n_rows, 8);
            for (i, cfd) in rules.iter().enumerate() {
                let want = violations(&r, cfd);
                assert_eq!(
                    report.rules[i].sample, want,
                    "rule {i} at {threads} threads"
                );
                assert_eq!(report.rules[i].violations, want.len());
                assert_eq!(report.rules[i].satisfied(), satisfies(&r, cfd));
            }
            assert!(!report.satisfied());
            // ψ is violated by (t1, t4) and (t3, t8), ψ′ by t8 alone
            assert_eq!(report.total_violations(), 3);
        }
    }

    #[test]
    fn detect_matches_reference_order() {
        let r = cust();
        let rules = rules(&r);
        let found = detect_violations(&r, &rules);
        let mut want = Vec::new();
        for (i, cfd) in rules.iter().enumerate() {
            for v in violations(&r, cfd) {
                want.push((i, v));
            }
        }
        assert_eq!(found, want);
        assert!(!satisfies_cover(&r, &rules));
        assert!(satisfies_cover(&r, &rules[2..]));
    }

    #[test]
    fn limit_caps_the_sample_not_the_counters() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let r = relation_from_rows(
            schema,
            &[
                vec!["x", "1"],
                vec!["x", "2"],
                vec!["x", "3"],
                vec!["x", "4"],
            ],
        )
        .unwrap();
        let c = parse_cfd(&r, "(A -> B, (_ || _))").unwrap();
        let report = validate(
            &r,
            [&c],
            &ValidateOptions {
                limit: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.rules[0].violations, 3, "counters stay exact");
        assert_eq!(
            report.rules[0].sample,
            cfd_model::violation::violations_limited(&r, &c, 2)
        );
    }

    #[test]
    fn support_and_confidence_mirror_the_stream_counters() {
        let r = cust();
        let psi2 = parse_cfd(&r, "(AC -> CT, (131 || EDI))").unwrap();
        let report = validate(&r, [&psi2], &ValidateOptions::default());
        // three tuples carry AC = 131; one of them dissents
        assert_eq!(report.rules[0].support(), 3);
        assert_eq!(report.rules[0].violations, 1);
        assert!((report.rules[0].confidence() - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn measures_match_the_model_reference() {
        let r = cust();
        let rules = rules(&r);
        let report = validate(&r, &rules, &ValidateOptions::default());
        for (i, cfd) in rules.iter().enumerate() {
            assert_eq!(
                report.rules[i].measure,
                cfd_model::measure::measure(&r, cfd),
                "rule {i}"
            );
        }
        // the minimal-removal count can undercut the record count: with
        // a minority-valued witness, 2 pairs are reported but removing
        // the witness alone repairs the group
        use cfd_model::relation::relation_from_rows;
        let r = relation_from_rows(
            Schema::new(["X", "Y"]).unwrap(),
            &[vec!["g", "b"], vec!["g", "a"], vec!["g", "a"]],
        )
        .unwrap();
        let fd = parse_cfd(&r, "(X -> Y, (_ || _))").unwrap();
        let report = validate(&r, [&fd], &ValidateOptions::default());
        assert_eq!(report.rules[0].violations, 2);
        assert_eq!(report.rules[0].measure.violations, 1);
        assert_eq!(
            report.rules[0].measure,
            cfd_model::measure::measure(&r, &fd)
        );
    }

    #[test]
    fn repairs_match_the_reference() {
        let schema = Schema::new(["AC", "CT"]).unwrap();
        let r = relation_from_rows(
            schema,
            &[
                vec!["908", "MH"],
                vec!["908", "MH"],
                vec!["908", "XX"],
                vec!["212", "NYC"],
            ],
        )
        .unwrap();
        let rules = vec![
            parse_cfd(&r, "(AC -> CT, (908 || MH))").unwrap(),
            parse_cfd(&r, "(AC -> CT, (_ || _))").unwrap(),
        ];
        let kernel = suggest_repairs_for_cover(&r, &rules);
        // reference: per-rule repairs, first rule wins per cell
        let mut seen = cfd_model::FxHashSet::default();
        let mut want = Vec::new();
        for cfd in &rules {
            for rep in cfd_model::repair::suggest_repairs(&r, cfd) {
                if seen.insert((rep.tuple, rep.attr)) {
                    want.push(rep);
                }
            }
        }
        assert_eq!(kernel, want);
        let fixed = cfd_model::repair::apply_repairs(&r, &kernel);
        assert!(satisfies_cover(&fixed, &rules));
    }

    #[test]
    fn empty_cover_and_empty_relation() {
        let r = cust();
        let report = validate(&r, [], &ValidateOptions::default());
        assert!(report.satisfied());
        assert_eq!(report.rules.len(), 0);

        let empty = relation_from_rows::<&str>(Schema::new(["A", "B"]).unwrap(), &[]).unwrap();
        let rules = vec![cfd_model::Cfd::fd(cfd_model::AttrSet::singleton(0), 1)];
        let report = validate(&empty, &rules, &ValidateOptions::default());
        assert!(report.satisfied());
        assert_eq!(report.rules[0].support(), 0);
        assert_eq!(report.rules[0].confidence(), 1.0);
    }
}
