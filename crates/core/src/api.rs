//! The unified discovery API: one trait, one options struct, one
//! structured outcome — for all six algorithms.
//!
//! The paper presents CFDMiner, CTANE and FastCFD as interchangeable
//! answers to the same problem; this module makes them (plus the
//! brute-force oracle and the TANE/FastFD baselines) interchangeable in
//! code. Every consumer — the `cfd` CLI, the examples, the bench
//! harness, tests, an embedding server — goes through the same three
//! types:
//!
//! * [`DiscoverOptions`] — the validated, algorithm-independent knobs
//!   (support `k`, `max_lhs`, `threads`, `constants_only`, attribute
//!   projection);
//! * [`Discoverer`] — the trait all algorithms implement, with a
//!   cancellation/progress hook ([`Control`]);
//! * [`Discovery`] — the structured outcome: the cover plus per-phase
//!   timings, search counters, and machine-readable [`Note`]s for
//!   options the chosen algorithm ignores (replacing ad-hoc stderr
//!   warnings).
//!
//! The [`Algo`] registry ([`Algo::parse`], [`Algo::all`]) maps stable
//! names to algorithms so CLIs and test matrices never string-match:
//!
//! ```
//! use cfd_core::api::{Algo, Control, DiscoverOptions, Discoverer};
//! use cfd_datagen::cust::cust_relation;
//!
//! let rel = cust_relation();
//! let opts = DiscoverOptions::new(2);
//! let fast = Algo::FastCfd.discover_with(&rel, &opts, &Control::default()).unwrap();
//! let ctane = Algo::parse("ctane").unwrap()
//!     .discover_with(&rel, &opts, &Control::default()).unwrap();
//! assert_eq!(fast.cover.cfds(), ctane.cover.cfds());
//! assert!(fast.stats.candidates > 0);
//! ```

use crate::bruteforce::BruteForce;
use crate::cfdminer::CfdMiner;
use crate::ctane::Ctane;
use crate::fastcfd::{DiffSetMode, FastCfd};
use cfd_fd::{FastFd, Tane};
use cfd_model::attrset::AttrSet;
use cfd_model::cover::CanonicalCover;
use cfd_model::json::Json;
pub use cfd_model::measure::RuleMeasure;
pub use cfd_model::progress::{Cancelled, Control, PhaseTiming, Progress, SearchStats};
use cfd_model::relation::Relation;
use cfd_partition::RelationIndex;

/// The algorithm registry: every discovery algorithm the suite ships,
/// under its stable CLI/wire name.
///
/// `Algo` is both a name table ([`Algo::parse`], [`Algo::name`],
/// [`Algo::all`]) and itself a [`Discoverer`] (delegating to a
/// default-configured instance), so a matrix over every algorithm is a
/// plain loop:
///
/// ```
/// use cfd_core::api::{Algo, Control, DiscoverOptions, Discoverer};
/// let rel = cfd_datagen::cust::cust_relation();
/// for algo in Algo::all() {
///     let d = algo.discover_with(&rel, &DiscoverOptions::new(2), &Control::default()).unwrap();
///     println!("{}: {} rules", algo, d.cover.len());
/// }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Algo {
    /// CFDMiner — constant CFDs via free/closed item sets (Section 3).
    CfdMiner,
    /// CTANE — level-wise general CFD discovery (Section 4).
    Ctane,
    /// FastCFD — depth-first over closed-set difference sets (Section 5).
    FastCfd,
    /// NaiveFast — FastCFD with stripped-partition difference sets.
    Naive,
    /// TANE — classical FD discovery (plain FDs only).
    Tane,
    /// FastFD — depth-first classical FD discovery (plain FDs only).
    FastFd,
    /// Exhaustive enumeration — the test oracle (tiny instances only).
    BruteForce,
}

impl Algo {
    /// Every registered algorithm, in documentation order. Drives the
    /// CLI's `--algo` table, `cfd algos`, and the CI algorithm matrix.
    pub fn all() -> [Algo; 7] {
        [
            Algo::CfdMiner,
            Algo::Ctane,
            Algo::FastCfd,
            Algo::Naive,
            Algo::Tane,
            Algo::FastFd,
            Algo::BruteForce,
        ]
    }

    /// The stable name (what [`Algo::parse`] accepts).
    pub const fn name(self) -> &'static str {
        match self {
            Algo::CfdMiner => "cfdminer",
            Algo::Ctane => "ctane",
            Algo::FastCfd => "fastcfd",
            Algo::Naive => "naive",
            Algo::Tane => "tane",
            Algo::FastFd => "fastfd",
            Algo::BruteForce => "bruteforce",
        }
    }

    /// One-line description for help output.
    pub const fn description(self) -> &'static str {
        match self {
            Algo::CfdMiner => "constant CFDs via free/closed item sets (Section 3)",
            Algo::Ctane => "general CFDs, level-wise with C+ pruning (Section 4)",
            Algo::FastCfd => "general CFDs, depth-first over difference sets (Section 5)",
            Algo::Naive => "FastCFD with stripped-partition difference sets (NaiveFast)",
            Algo::Tane => "classical minimal FDs, level-wise (baseline)",
            Algo::FastFd => "classical minimal FDs, depth-first (baseline)",
            Algo::BruteForce => "exhaustive oracle — tiny instances only",
        }
    }

    /// Resolves a (case-insensitive) name. The error lists every valid
    /// name, so CLIs can surface it verbatim.
    pub fn parse(name: &str) -> Result<Algo, UnknownAlgo> {
        let lower = name.to_ascii_lowercase();
        Algo::all()
            .into_iter()
            .find(|a| a.name() == lower)
            .ok_or_else(|| UnknownAlgo(name.to_string()))
    }

    /// True iff the algorithm honors [`DiscoverOptions::max_lhs`].
    pub const fn honors_max_lhs(self) -> bool {
        matches!(self, Algo::Ctane | Algo::Tane)
    }

    /// True iff the algorithm uses the support threshold `k` (the FD
    /// baselines discover exact FDs regardless of support).
    pub const fn uses_support(self) -> bool {
        !matches!(self, Algo::Tane | Algo::FastFd)
    }

    /// True iff the algorithm only ever produces constant CFDs.
    pub const fn constants_native(self) -> bool {
        matches!(self, Algo::CfdMiner)
    }

    /// True iff the algorithm only produces plain FDs (all-wildcard
    /// variable CFDs) — `constants_only` yields an empty cover.
    pub const fn fds_only(self) -> bool {
        matches!(self, Algo::Tane | Algo::FastFd)
    }

    /// True iff the algorithm honors
    /// [`DiscoverOptions::min_confidence`] — i.e. mines approximate
    /// (θ-thresholded) covers. The depth-first algorithms and the
    /// oracle are exact-only and note the ignored option instead.
    pub const fn approximates(self) -> bool {
        matches!(self, Algo::Ctane | Algo::Tane | Algo::CfdMiner)
    }

    /// A default-configured instance of the algorithm (shared knobs
    /// come from [`DiscoverOptions`] at `discover_with` time;
    /// algorithm-specific ablation knobs keep their paper defaults).
    pub fn discoverer(self) -> Box<dyn Discoverer> {
        match self {
            Algo::CfdMiner => Box::new(CfdMiner::new(1)),
            Algo::Ctane => Box::new(Ctane::new(1)),
            Algo::FastCfd => Box::new(FastCfd::new(1)),
            Algo::Naive => Box::new(FastCfd::naive(1)),
            Algo::Tane => Box::new(Tane::new()),
            Algo::FastFd => Box::new(FastFd::new()),
            Algo::BruteForce => Box::new(BruteForce::new(1)),
        }
    }
}

impl std::fmt::Display for Algo {
    /// Prints [`Algo::name`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algo {
    type Err = UnknownAlgo;
    fn from_str(s: &str) -> Result<Algo, UnknownAlgo> {
        Algo::parse(s)
    }
}

/// An algorithm name [`Algo::parse`] did not recognize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownAlgo(pub String);

impl std::fmt::Display for UnknownAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown algorithm {:?} (valid: ", self.0)?;
        for (i, a) in Algo::all().into_iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(a.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for UnknownAlgo {}

/// Algorithm-independent discovery options, validated once up front.
///
/// One struct configures every algorithm; options an algorithm has no
/// use for are *reported*, not silently dropped — [`Discovery::notes`]
/// carries a machine-readable [`Note`] per ignored option.
///
/// ```
/// use cfd_core::api::{Algo, Control, DiscoverOptions, Discoverer};
/// let rel = cfd_datagen::cust::cust_relation();
/// let opts = DiscoverOptions::new(2).max_lhs(3).threads(4);
/// // CTANE honors both max_lhs and threads — nothing to report:
/// let d = Algo::Ctane.discover_with(&rel, &opts, &Control::default()).unwrap();
/// assert!(d.notes.is_empty());
/// // FastCFD has no LHS bound — and says so:
/// let d = Algo::FastCfd.discover_with(&rel, &opts, &Control::default()).unwrap();
/// assert_eq!(d.notes.len(), 1);
/// assert_eq!(d.notes[0].option, "max-lhs");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DiscoverOptions {
    /// Support threshold `k ≥ 1`: discovered CFDs must hold on at least
    /// `k` tuples (ignored by the FD baselines).
    pub k: usize,
    /// Upper bound on LHS size (honored by the level-wise algorithms).
    pub max_lhs: Option<usize>,
    /// Worker threads (`1` = serial). FastCFD/NaiveFast shard
    /// `FindCover` across RHS attributes; CTANE/TANE shard level
    /// expansion across prefix-join runs; CFDMiner shards its item-set
    /// mining pass. Output never depends on the thread count.
    pub threads: usize,
    /// Restrict the result to constant CFDs (applied natively by
    /// CFDMiner, as a post-filter elsewhere).
    pub constants_only: bool,
    /// Project the relation onto this attribute set before discovery;
    /// the resulting cover speaks the projected schema (see
    /// [`Discovery::relation`]).
    pub project: Option<AttrSet>,
    /// Confidence threshold `θ ∈ (0, 1]` for approximate discovery
    /// (g1-style partition error — see `cfd_model::measure`). At the
    /// default `1.0` every algorithm runs its exact path; below it,
    /// CTANE/TANE/CFDMiner emit rules whose measured confidence
    /// reaches `θ` (exact-only algorithms note the ignored option).
    pub min_confidence: f64,
    /// Keep only the `k` best rules, ranked by confidence, then
    /// support, then canonical rule order. Applied after measurement,
    /// so it works with every algorithm.
    pub top_k: Option<usize>,
}

impl Default for DiscoverOptions {
    /// `k = 2`, everything else off — the paper's demonstration
    /// configuration.
    fn default() -> DiscoverOptions {
        DiscoverOptions::new(2)
    }
}

impl DiscoverOptions {
    /// Options with support threshold `k` and every other knob off.
    pub fn new(k: usize) -> DiscoverOptions {
        DiscoverOptions {
            k,
            max_lhs: None,
            threads: 1,
            constants_only: false,
            project: None,
            min_confidence: 1.0,
            top_k: None,
        }
    }

    /// Sets the confidence threshold `θ` for approximate discovery.
    pub fn min_confidence(mut self, theta: f64) -> DiscoverOptions {
        self.min_confidence = theta;
        self
    }

    /// Keeps only the `k` best rules (by confidence, then support).
    pub fn top_k(mut self, k: usize) -> DiscoverOptions {
        self.top_k = Some(k);
        self
    }

    /// Sets the LHS size bound.
    pub fn max_lhs(mut self, m: usize) -> DiscoverOptions {
        self.max_lhs = Some(m);
        self
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, t: usize) -> DiscoverOptions {
        self.threads = t;
        self
    }

    /// Restricts the result to constant CFDs.
    pub fn constants_only(mut self) -> DiscoverOptions {
        self.constants_only = true;
        self
    }

    /// Projects the relation onto `attrs` before discovery.
    pub fn project(mut self, attrs: AttrSet) -> DiscoverOptions {
        self.project = Some(attrs);
        self
    }

    /// Validates the options against a relation. Every [`Discoverer`]
    /// checks this before running; call it directly to fail fast.
    pub fn validate(&self, rel: &Relation) -> Result<(), DiscoverError> {
        let fail = |m: String| Err(DiscoverError::Options(m));
        if self.k < 1 {
            return fail("support threshold k must be at least 1".into());
        }
        if self.threads < 1 {
            return fail("threads must be at least 1".into());
        }
        if !(self.min_confidence > 0.0 && self.min_confidence <= 1.0) {
            return fail(format!(
                "min_confidence must be within (0, 1], got {}",
                self.min_confidence
            ));
        }
        if self.top_k == Some(0) {
            return fail("top_k must be at least 1".into());
        }
        if let Some(p) = self.project {
            if p.is_empty() {
                return fail("projection must keep at least one attribute".into());
            }
            let universe = rel.schema().all_attrs();
            if !p.is_subset(universe) {
                return fail(format!(
                    "projection references attribute ids outside the schema (arity {})",
                    rel.arity()
                ));
            }
        }
        Ok(())
    }

    /// Serializes the options (attribute ids resolved against `rel`).
    pub fn to_json(&self, rel: &Relation) -> Json {
        Json::obj([
            ("k", Json::from(self.k)),
            ("max_lhs", Json::from(self.max_lhs)),
            ("threads", Json::from(self.threads)),
            ("constants_only", Json::from(self.constants_only)),
            ("min_confidence", Json::from(self.min_confidence)),
            (
                "top_k",
                match self.top_k {
                    None => Json::Null,
                    Some(k) => Json::from(k),
                },
            ),
            (
                "project",
                match self.project {
                    None => Json::Null,
                    Some(set) => Json::arr(set.iter().map(|a| Json::from(rel.schema().name(a)))),
                },
            ),
        ])
    }
}

/// A machine-readable remark attached to a [`Discovery`] — today always
/// "this option was ignored", replacing the CLI's former ad-hoc stderr
/// warnings. `Display` renders the human-facing sentence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Note {
    /// The algorithm the note is about.
    pub algo: Algo,
    /// The ignored option, in CLI-flag spelling (`"threads"`,
    /// `"max-lhs"`, `"k"`, `"constants-only"`).
    pub option: &'static str,
    /// The value that was supplied.
    pub value: String,
    /// Why the option had no effect.
    pub reason: &'static str,
}

impl std::fmt::Display for Note {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "--{} {} is ignored by --algo {}: {}",
            self.option, self.value, self.algo, self.reason
        )
    }
}

impl Note {
    /// Serializes the note.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("algo", Json::from(self.algo.name())),
            ("option", Json::from(self.option)),
            ("value", Json::from(self.value.as_str())),
            ("reason", Json::from(self.reason)),
        ])
    }
}

/// A discovery run failed before producing a cover.
#[derive(Clone, Debug, PartialEq)]
pub enum DiscoverError {
    /// The options failed [`DiscoverOptions::validate`].
    Options(String),
    /// The run was cancelled through its [`Control`].
    Cancelled,
    /// The algorithm cannot run on this input (e.g. the brute-force
    /// oracle refuses arity > 10).
    Unsupported(String),
}

impl std::fmt::Display for DiscoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoverError::Options(m) => write!(f, "invalid options: {m}"),
            DiscoverError::Cancelled => f.write_str("discovery cancelled"),
            DiscoverError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for DiscoverError {}

impl From<Cancelled> for DiscoverError {
    fn from(_: Cancelled) -> DiscoverError {
        DiscoverError::Cancelled
    }
}

/// The structured outcome of a discovery run.
#[derive(Clone, Debug)]
pub struct Discovery {
    /// Which algorithm ran.
    pub algo: Algo,
    /// The canonical cover (after `constants_only` filtering and
    /// `top_k` truncation).
    pub cover: CanonicalCover,
    /// Kernel-measured support/confidence of every rule, aligned with
    /// [`CanonicalCover::cfds`] order — the scores `top_k` ranked by
    /// and the numbers the `[support=N conf=F]` wire annotations and
    /// the JSON document carry.
    pub measures: Vec<RuleMeasure>,
    /// Search counters (candidates tested/pruned, partitions computed,
    /// …) with the algorithm's per-phase timings in
    /// [`SearchStats::phases`]; a final `total` phase covers the whole
    /// run including projection and filtering.
    pub stats: SearchStats,
    /// Options the run ignored, one note per option.
    pub notes: Vec<Note>,
    /// The options the run was configured with.
    pub options: DiscoverOptions,
    /// When [`DiscoverOptions::project`] was set: the projected
    /// relation the cover's attribute ids refer to.
    pub projected: Option<Relation>,
}

impl Discovery {
    /// The relation the cover speaks: the projection when one was
    /// requested, otherwise `input` (pass the relation you discovered
    /// on). Use this for [`CanonicalCover::to_text`] / display.
    pub fn relation<'a>(&'a self, input: &'a Relation) -> &'a Relation {
        self.projected.as_ref().unwrap_or(input)
    }

    /// Serializes the cover in the *annotated* wire format: one rule
    /// per line with its measured `[support=N conf=F]` suffix — what
    /// `cfd discover --min-confidence/--top-k` prints, and what
    /// `CanonicalCover::from_annotated_text` (and plain `from_text`)
    /// parse back.
    pub fn to_annotated_text(&self, input: &Relation) -> String {
        self.cover
            .to_annotated_text(self.relation(input), &self.measures)
    }

    /// Total wall-clock duration (the `total` phase).
    pub fn total_time(&self) -> std::time::Duration {
        self.stats
            .phases
            .iter()
            .rev()
            .find(|p| p.name == "total")
            .map(|p| p.duration)
            .unwrap_or_default()
    }

    /// Serializes the whole outcome — rules (wire text + structure),
    /// counts, counters, timings, notes — as one JSON object. This is
    /// the document behind `cfd discover --format json`.
    pub fn to_json(&self, input: &Relation) -> Json {
        let rel = self.relation(input);
        let (nc, nv) = self.cover.counts();
        // each rule object carries its measured support/confidence
        // alongside the wire text and structure; the removal count uses
        // the same key as `cfd check`'s per-rule report ("violations"
        // there means violation *records*, a different number)
        let rules = if self.measures.len() == self.cover.len() {
            Json::arr(self.cover.iter().zip(&self.measures).map(|(c, m)| {
                let mut doc = c.to_json(rel);
                if let Json::Obj(fields) = &mut doc {
                    fields.push(("support".into(), Json::from(m.support)));
                    fields.push(("removals".into(), Json::from(m.violations)));
                    fields.push(("confidence".into(), Json::from(m.confidence())));
                }
                doc
            }))
        } else {
            self.cover.to_json(rel)
        };
        Json::obj([
            ("algorithm", Json::from(self.algo.name())),
            ("options", self.options.to_json(input)),
            ("rules", rules),
            (
                "counts",
                Json::obj([
                    ("total", Json::from(self.cover.len())),
                    ("constant", Json::from(nc)),
                    ("variable", Json::from(nv)),
                ]),
            ),
            (
                "stats",
                Json::obj([
                    ("candidates", Json::from(self.stats.candidates)),
                    ("pruned", Json::from(self.stats.pruned)),
                    ("partitions", Json::from(self.stats.partitions)),
                    ("free_sets", Json::from(self.stats.free_sets)),
                    ("closed_sets", Json::from(self.stats.closed_sets)),
                    (
                        "diff_set_families",
                        Json::from(self.stats.diff_set_families),
                    ),
                    ("emitted", Json::from(self.stats.emitted)),
                    (
                        "store",
                        Json::obj([
                            ("hits", Json::from(self.stats.store.hits)),
                            ("misses", Json::from(self.stats.store.misses)),
                            ("evictions", Json::from(self.stats.store.evictions)),
                            ("entries", Json::from(self.stats.store.entries)),
                            ("bytes", Json::from(self.stats.store.bytes)),
                        ]),
                    ),
                ]),
            ),
            (
                "timings",
                Json::arr(self.stats.phases.iter().map(|p| {
                    Json::obj([
                        ("phase", Json::from(p.name)),
                        ("seconds", Json::from(p.duration.as_secs_f64())),
                    ])
                })),
            ),
            ("notes", Json::arr(self.notes.iter().map(Note::to_json))),
        ])
    }
}

/// The unified discovery interface all six algorithms implement.
///
/// Implementors provide [`Discoverer::algo`] (their registry identity)
/// and [`Discoverer::run`] (the instrumented core). Consumers call the
/// provided [`Discoverer::discover_with`], which validates the options,
/// applies the projection, runs the algorithm, post-filters for
/// `constants_only`, and assembles the [`Discovery`] outcome with
/// notes for ignored options.
///
/// Shared knobs (`k`, `max_lhs`, `threads`) are read from
/// [`DiscoverOptions`] — the single source of truth on this path.
/// Struct-level builder knobs cover algorithm-specific ablations only
/// (e.g. [`FastCfd::dynamic_reorder`]) and keep configuring the legacy
/// `discover(&rel)` shorthand.
///
/// ```
/// use cfd_core::api::{Control, DiscoverOptions, Discoverer};
/// use cfd_core::FastCfd;
///
/// let rel = cfd_datagen::cust::cust_relation();
/// let d = FastCfd::new(1)
///     .discover_with(&rel, &DiscoverOptions::new(2), &Control::default())
///     .unwrap();
/// assert!(d.cover.iter().all(|c| cfd_model::satisfies(&rel, c)));
/// ```
pub trait Discoverer {
    /// The registry identity of this algorithm.
    fn algo(&self) -> Algo;

    /// The instrumented core: discover on `rel` as configured by
    /// `opts`, polling `ctrl` at coarse checkpoints and filling
    /// `stats`. Prefer [`Discoverer::discover_with`], which adds
    /// validation, projection, filtering and note synthesis.
    fn run(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, DiscoverError>;

    /// [`Discoverer::run`] with self-reported rule measures: algorithms
    /// that already hold the groupings behind each emitted rule (the
    /// level-wise miners' partitions, CFDMiner's free-set supports)
    /// return `Some(measures)` aligned with the cover's canonical
    /// order, and [`Discoverer::discover_with`] skips its kernel
    /// measuring pass entirely. The default returns `None` — the
    /// kernel pass measures the cover in one sharded scan.
    fn run_measured(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Option<Vec<RuleMeasure>>), DiscoverError> {
        Ok((self.run(rel, opts, ctrl, stats)?, None))
    }

    /// [`Discoverer::run_measured`] against a caller-owned
    /// [`RelationIndex`] — the per-dataset column cache a resident
    /// server shares across jobs. Algorithms that consult per-column
    /// value regions (CTANE's level-1 seeding and constant
    /// refinements) override this to reuse the shared cache; the
    /// default ignores the index and runs normally, so every
    /// implementor stays correct. Output is byte-identical either way.
    fn run_measured_indexed(
        &self,
        rel: &Relation,
        index: &RelationIndex,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Option<Vec<RuleMeasure>>), DiscoverError> {
        let _ = index;
        self.run_measured(rel, opts, ctrl, stats)
    }

    /// Full-service discovery: validates `opts`, projects, runs,
    /// filters, and returns the structured [`Discovery`].
    fn discover_with(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
    ) -> Result<Discovery, DiscoverError> {
        self.discover_indexed(rel, None, opts, ctrl)
    }

    /// [`Discoverer::discover_with`] with an optional shared
    /// [`RelationIndex`] over `rel` — the job-facing entry point of a
    /// resident server (`cfd serve`): the registry builds one index per
    /// registered dataset and every discover/measure job on that
    /// dataset reuses it, so per-column value regions are computed once
    /// per dataset rather than once per request. The index is consulted
    /// by the search (where the algorithm supports it) *and* by the
    /// kernel measuring pass. When [`DiscoverOptions::project`] is set
    /// the index describes the wrong relation and is ignored for that
    /// run. The [`Discovery`] is byte-identical with or without the
    /// index.
    fn discover_indexed(
        &self,
        rel: &Relation,
        index: Option<&RelationIndex>,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
    ) -> Result<Discovery, DiscoverError> {
        opts.validate(rel)?;
        let algo = self.algo();
        let mut notes = Vec::new();
        if opts.max_lhs.is_some() && !algo.honors_max_lhs() {
            notes.push(Note {
                algo,
                option: "max-lhs",
                value: opts.max_lhs.unwrap_or_default().to_string(),
                reason: "this algorithm does not bound LHS size; the full cover is produced",
            });
        }
        if opts.k > 1 && !algo.uses_support() {
            notes.push(Note {
                algo,
                option: "k",
                value: opts.k.to_string(),
                reason: "the FD baselines discover exact FDs regardless of support",
            });
        }
        if opts.constants_only && algo.fds_only() {
            notes.push(Note {
                algo,
                option: "constants-only",
                value: "true".into(),
                reason: "FD baselines produce no constant rules; the result is empty",
            });
        }
        if opts.min_confidence < 1.0 && !algo.approximates() {
            notes.push(Note {
                algo,
                option: "min-confidence",
                value: opts.min_confidence.to_string(),
                reason: "only ctane/tane/cfdminer mine approximate (confidence-thresholded) \
                         covers; the exact cover is produced",
            });
        }
        let t0 = std::time::Instant::now();
        let projected = match opts.project {
            Some(attrs) => Some(
                rel.project(attrs)
                    .map_err(|e| DiscoverError::Options(e.to_string()))?,
            ),
            None => None,
        };
        let work = projected.as_ref().unwrap_or(rel);
        // a projection changes the relation the index was built for —
        // fall back to a private index for that run
        let index = if projected.is_some() { None } else { index };
        let mut stats = SearchStats::default();
        let (mut cover, mut self_measures) = {
            let _sp = cfd_obs::span!("discover.run");
            match index {
                Some(ix) => self.run_measured_indexed(work, ix, opts, ctrl, &mut stats)?,
                None => self.run_measured(work, opts, ctrl, &mut stats)?,
            }
        };
        if opts.constants_only && !algo.constants_native() {
            // post-filter to the constant fragment, keeping any
            // self-reported measures aligned (the fragment of a sorted
            // cover is still sorted, so order survives)
            match self_measures.take() {
                Some(ms) => {
                    let mut kept_cfds = Vec::new();
                    let mut kept_ms = Vec::new();
                    for (c, m) in cover.cfds().iter().zip(ms) {
                        if c.is_constant() {
                            kept_cfds.push(c.clone());
                            kept_ms.push(m);
                        }
                    }
                    cover = CanonicalCover::from_cfds(kept_cfds);
                    self_measures = Some(kept_ms);
                }
                None => cover = cover.constant_cover(),
            }
        }
        // annotate every rule with its measured support and confidence.
        // The level-wise miners measure at emission from the partitions
        // they already hold (`run_measured`); everything else gets one
        // kernel CoverPlan pass (sharded like `cfd check`), aligned
        // with the cover's canonical order.
        let t_measure = std::time::Instant::now();
        let mut measures: Vec<RuleMeasure> = match self_measures {
            Some(ms) => ms,
            None if cover.is_empty() => Vec::new(),
            None => {
                let _sp = cfd_obs::span!("discover.measure");
                let vopts = cfd_validate::ValidateOptions {
                    threads: opts.threads,
                    limit: 0,
                };
                let report = match index {
                    Some(ix) => {
                        cfd_validate::validate_indexed(work, cover.iter(), ix, &vopts, ctrl)
                    }
                    None => cfd_validate::validate_with(work, cover.iter(), &vopts, ctrl),
                };
                report.rules.into_iter().map(|r| r.measure).collect()
            }
        };
        stats.phase("measure", t_measure.elapsed());
        // top-k: rank by confidence, then support, then canonical rule
        // order, and truncate — the surviving rules keep cover order
        let cover = match opts.top_k {
            Some(top) if cover.len() > top => {
                let mut order: Vec<usize> = (0..cover.len()).collect();
                order.sort_unstable_by(|&i, &j| {
                    measures[j]
                        .confidence()
                        .partial_cmp(&measures[i].confidence())
                        .expect("confidence is finite")
                        .then(measures[j].support.cmp(&measures[i].support))
                        .then(i.cmp(&j))
                });
                order.truncate(top);
                order.sort_unstable();
                let kept_cfds: Vec<_> = order.iter().map(|&i| cover.cfds()[i].clone()).collect();
                measures = order.iter().map(|&i| measures[i]).collect();
                CanonicalCover::from_cfds(kept_cfds)
            }
            _ => cover,
        };
        stats.phase("total", t0.elapsed());
        // mirror the run's counters into the attached metrics sink, so a
        // `--metrics-out` snapshot carries the same numbers as the JSON
        // "stats" object without a second plumbing path
        if let Some(m) = ctrl.metrics() {
            m.add("discover.candidates", stats.candidates);
            m.add("discover.pruned", stats.pruned);
            m.add("discover.partitions", stats.partitions);
            m.add("discover.free_sets", stats.free_sets);
            m.add("discover.closed_sets", stats.closed_sets);
            m.add("discover.diff_set_families", stats.diff_set_families);
            m.add("discover.emitted", stats.emitted);
            m.add("discover.rules", cover.len() as u64);
            m.add("store.hits", stats.store.hits);
            m.add("store.misses", stats.store.misses);
            m.add("store.evictions", stats.store.evictions);
            m.set_gauge("store.entries", stats.store.entries);
            m.set_gauge("store.bytes", stats.store.bytes);
        }
        Ok(Discovery {
            algo,
            cover,
            measures,
            stats,
            notes,
            options: opts.clone(),
            projected,
        })
    }

    /// One-call discovery with the paper's default options (`k = 2`,
    /// exact, serial) — the shortest path from a relation to a
    /// structured [`Discovery`]:
    ///
    /// ```
    /// use cfd_core::api::{Algo, Discoverer};
    ///
    /// let rel = cfd_datagen::cust::cust_relation();
    /// let d = Algo::Ctane.discover(&rel).unwrap();
    /// assert!(!d.cover.is_empty());
    /// // every rule comes back measured: exact discovery means every
    /// // measure is violation-free
    /// assert_eq!(d.measures.len(), d.cover.len());
    /// assert!(d.measures.iter().all(|m| m.violations == 0));
    /// ```
    fn discover(&self, rel: &Relation) -> Result<Discovery, DiscoverError> {
        self.discover_with(rel, &DiscoverOptions::default(), &Control::default())
    }
}

impl CfdMiner {
    /// The instance `discover_with` actually runs: shared knobs from
    /// the options, ablation knobs from `self`.
    fn configured(&self, opts: &DiscoverOptions) -> CfdMiner {
        CfdMiner::new(opts.k)
            .min_confidence(opts.min_confidence)
            .threads(opts.threads.max(1))
    }
}

impl Discoverer for CfdMiner {
    fn algo(&self) -> Algo {
        Algo::CfdMiner
    }

    fn run(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, DiscoverError> {
        Ok(self.configured(opts).run(rel, ctrl, stats)?)
    }

    fn run_measured(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Option<Vec<RuleMeasure>>), DiscoverError> {
        let (cover, measures) = self.configured(opts).run_measured(rel, ctrl, stats)?;
        Ok((cover, Some(measures)))
    }
}

impl Ctane {
    /// The instance `discover_with` actually runs: shared knobs from
    /// the options, ablation knobs (cache budget) from `self`.
    fn configured(&self, opts: &DiscoverOptions) -> Ctane {
        Ctane {
            k: opts.k,
            max_lhs: opts.max_lhs,
            min_confidence: opts.min_confidence,
            threads: opts.threads.max(1),
            ..*self
        }
    }
}

impl Discoverer for Ctane {
    fn algo(&self) -> Algo {
        Algo::Ctane
    }

    fn run(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, DiscoverError> {
        Ok(self.configured(opts).run(rel, ctrl, stats)?)
    }

    fn run_measured(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Option<Vec<RuleMeasure>>), DiscoverError> {
        let (cover, measures) = self.configured(opts).run_measured(rel, ctrl, stats)?;
        Ok((cover, Some(measures)))
    }

    fn run_measured_indexed(
        &self,
        rel: &Relation,
        index: &RelationIndex,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Option<Vec<RuleMeasure>>), DiscoverError> {
        let (cover, measures) = self
            .configured(opts)
            .run_measured_indexed(rel, index, ctrl, stats)?;
        Ok((cover, Some(measures)))
    }
}

impl Discoverer for FastCfd {
    fn algo(&self) -> Algo {
        if self.mode == DiffSetMode::StrippedPartitions {
            Algo::Naive
        } else {
            Algo::FastCfd
        }
    }

    fn run(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, DiscoverError> {
        // shared knobs from opts; ablation knobs (mode, reordering,
        // constant-CFD delegation, free-set pruning) from self
        let alg = FastCfd {
            k: opts.k,
            threads: opts.threads.max(1),
            ..*self
        };
        Ok(alg.run(rel, ctrl, stats)?)
    }
}

/// The instance `discover_with` actually runs: shared knobs from the
/// options, ablation knobs (cache budget) from `base`.
fn configured_tane(base: &Tane, opts: &DiscoverOptions) -> Tane {
    base.with_shared_knobs(opts.max_lhs, opts.min_confidence, opts.threads)
}

impl Discoverer for Tane {
    fn algo(&self) -> Algo {
        Algo::Tane
    }

    fn run(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, DiscoverError> {
        Ok(configured_tane(self, opts).run(rel, ctrl, stats)?)
    }

    fn run_measured(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Option<Vec<RuleMeasure>>), DiscoverError> {
        let (cover, measures) = configured_tane(self, opts).run_measured(rel, ctrl, stats)?;
        Ok((cover, Some(measures)))
    }
}

impl Discoverer for FastFd {
    fn algo(&self) -> Algo {
        Algo::FastFd
    }

    fn run(
        &self,
        rel: &Relation,
        _opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, DiscoverError> {
        Ok(FastFd::run(self, rel, ctrl, stats)?)
    }
}

impl Discoverer for BruteForce {
    fn algo(&self) -> Algo {
        Algo::BruteForce
    }

    fn run(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, DiscoverError> {
        if rel.arity() > 10 {
            return Err(DiscoverError::Unsupported(format!(
                "bruteforce is a test oracle; refusing arity {} > 10",
                rel.arity()
            )));
        }
        Ok(BruteForce::new(opts.k).run(rel, ctrl, stats)?)
    }
}

impl Discoverer for Algo {
    fn algo(&self) -> Algo {
        *self
    }

    fn run(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, DiscoverError> {
        self.discoverer().run(rel, opts, ctrl, stats)
    }

    fn run_measured(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Option<Vec<RuleMeasure>>), DiscoverError> {
        self.discoverer().run_measured(rel, opts, ctrl, stats)
    }

    fn run_measured_indexed(
        &self,
        rel: &Relation,
        index: &RelationIndex,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Option<Vec<RuleMeasure>>), DiscoverError> {
        self.discoverer()
            .run_measured_indexed(rel, index, opts, ctrl, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::cust_relation;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn registry_names_round_trip() {
        for algo in Algo::all() {
            assert_eq!(Algo::parse(algo.name()), Ok(algo));
            assert_eq!(Algo::parse(&algo.name().to_uppercase()), Ok(algo));
            assert_eq!(algo.to_string(), algo.name());
        }
        let err = Algo::parse("levelwise").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("levelwise") && msg.contains("fastcfd"),
            "{msg}"
        );
    }

    #[test]
    fn all_algorithms_run_through_the_trait() {
        let rel = cust_relation();
        let opts = DiscoverOptions::new(2);
        let reference = Algo::FastCfd
            .discover_with(&rel, &opts, &Control::default())
            .unwrap();
        for algo in Algo::all() {
            let d = algo
                .discover_with(&rel, &opts, &Control::default())
                .unwrap();
            assert_eq!(d.algo, algo);
            assert!(d.total_time() > std::time::Duration::ZERO);
            match algo {
                // the general algorithms agree on the canonical cover
                Algo::Ctane | Algo::Naive | Algo::BruteForce => {
                    assert_eq!(d.cover.cfds(), reference.cover.cfds(), "{algo}")
                }
                // CFDMiner is the constant fragment
                Algo::CfdMiner => {
                    assert_eq!(d.cover.cfds(), reference.cover.constant_cover().cfds())
                }
                // the FD baselines produce plain FDs only
                Algo::Tane | Algo::FastFd => {
                    assert!(d.cover.iter().all(|c| c.is_plain_fd()))
                }
                Algo::FastCfd => {}
            }
        }
    }

    #[test]
    fn trait_and_legacy_paths_agree() {
        let rel = cust_relation();
        for k in [1, 2, 3] {
            let legacy = FastCfd::new(k).discover(&rel);
            let unified = FastCfd::new(1)
                .discover_with(&rel, &DiscoverOptions::new(k), &Control::default())
                .unwrap();
            assert_eq!(legacy.cfds(), unified.cover.cfds(), "k={k}");
        }
        let legacy = Ctane::new(2).max_lhs(2).discover(&rel);
        let unified = Algo::Ctane
            .discover_with(
                &rel,
                &DiscoverOptions::new(2).max_lhs(2),
                &Control::default(),
            )
            .unwrap();
        assert_eq!(legacy.cfds(), unified.cover.cfds());
    }

    #[test]
    fn options_are_validated() {
        let rel = cust_relation();
        let bad_k = DiscoverOptions::new(0);
        assert!(matches!(
            Algo::FastCfd.discover_with(&rel, &bad_k, &Control::default()),
            Err(DiscoverError::Options(_))
        ));
        let mut bad_threads = DiscoverOptions::new(2);
        bad_threads.threads = 0;
        assert!(bad_threads.validate(&rel).is_err());
        let bad_proj = DiscoverOptions::new(2).project(AttrSet::from_iter([63]));
        assert!(matches!(
            bad_proj.validate(&rel),
            Err(DiscoverError::Options(_))
        ));
        assert!(DiscoverOptions::new(2)
            .project(AttrSet::EMPTY)
            .validate(&rel)
            .is_err());
    }

    #[test]
    fn ignored_options_become_notes() {
        let rel = cust_relation();
        // every algorithm honors --threads now (the level-wise miners
        // shard their level expansion, CFDMiner its mining pass), so a
        // thread count never produces a note
        for algo in Algo::all() {
            let d = algo
                .discover_with(
                    &rel,
                    &DiscoverOptions::new(2).threads(4),
                    &Control::default(),
                )
                .unwrap();
            assert!(
                d.notes.iter().all(|n| n.option != "threads"),
                "{algo} noted --threads"
            );
        }
        // an unhonored option still surfaces: fastcfd has no LHS bound
        let d = Algo::FastCfd
            .discover_with(
                &rel,
                &DiscoverOptions::new(2).max_lhs(2),
                &Control::default(),
            )
            .unwrap();
        assert_eq!(d.notes.len(), 1);
        let n = &d.notes[0];
        assert_eq!((n.option, n.value.as_str()), ("max-lhs", "2"));
        assert!(n
            .to_string()
            .contains("--max-lhs 2 is ignored by --algo fastcfd"));
        // honored options produce no note
        let d = Algo::FastCfd
            .discover_with(
                &rel,
                &DiscoverOptions::new(2).threads(4),
                &Control::default(),
            )
            .unwrap();
        assert!(d.notes.is_empty());
        // the FD baselines note both k > 1 and constants_only
        let mut opts = DiscoverOptions::new(2);
        opts.constants_only = true;
        let d = Algo::Tane
            .discover_with(&rel, &opts, &Control::default())
            .unwrap();
        let mut noted: Vec<&str> = d.notes.iter().map(|n| n.option).collect();
        noted.sort_unstable();
        assert_eq!(noted, ["constants-only", "k"]);
        assert!(d.cover.is_empty());
    }

    #[test]
    fn constants_only_filters_general_covers() {
        let rel = cust_relation();
        let full = Algo::FastCfd
            .discover_with(&rel, &DiscoverOptions::new(2), &Control::default())
            .unwrap();
        let mut opts = DiscoverOptions::new(2);
        opts.constants_only = true;
        let constants = Algo::FastCfd
            .discover_with(&rel, &opts, &Control::default())
            .unwrap();
        assert_eq!(constants.cover.cfds(), full.cover.constant_cover().cfds());
        let miner = Algo::CfdMiner
            .discover_with(&rel, &opts, &Control::default())
            .unwrap();
        assert_eq!(miner.cover.cfds(), constants.cover.cfds());
    }

    #[test]
    fn projection_discovers_on_the_sub_relation() {
        let rel = cust_relation();
        // project away NM (attr 3 in cust: CC, AC, PN, NM, STR, CT, ZIP)
        let keep = rel.schema().attr_set(&["CC", "AC", "CT"]).unwrap();
        let opts = DiscoverOptions::new(2).project(keep);
        let d = Algo::FastCfd
            .discover_with(&rel, &opts, &Control::default())
            .unwrap();
        let sub = d.relation(&rel);
        assert_eq!(sub.arity(), 3);
        // the cover speaks the projected schema and round-trips on it
        let text = d.cover.to_text(sub);
        assert_eq!(
            CanonicalCover::from_text(sub, &text).unwrap().cfds(),
            d.cover.cfds()
        );
        // and matches discovery on a hand-projected relation
        let direct = FastCfd::new(2).discover(&rel.project(keep).unwrap());
        assert_eq!(d.cover.cfds(), direct.cfds());
    }

    #[test]
    fn cancellation_aborts_the_run() {
        let rel = cust_relation();
        let flag = AtomicBool::new(true); // pre-cancelled
        let ctrl = Control::default().cancel_with(&flag);
        for algo in Algo::all() {
            let r = algo.discover_with(&rel, &DiscoverOptions::new(2), &ctrl);
            assert!(
                matches!(r, Err(DiscoverError::Cancelled)),
                "{algo} must honor cancellation"
            );
        }
        flag.store(false, Ordering::Relaxed);
        assert!(Algo::FastCfd
            .discover_with(&rel, &DiscoverOptions::new(2), &ctrl)
            .is_ok());
    }

    #[test]
    fn progress_events_are_reported() {
        use std::sync::Mutex;
        let rel = cust_relation();
        let phases: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let sink = |p: cfd_model::progress::Progress| phases.lock().unwrap().push(p.phase);
        let ctrl = Control::default().progress_with(&sink);
        Algo::Ctane
            .discover_with(&rel, &DiscoverOptions::new(2), &ctrl)
            .unwrap();
        assert!(phases.lock().unwrap().contains(&"level"));
    }

    #[test]
    fn stats_count_real_work() {
        let rel = cust_relation();
        for algo in Algo::all() {
            let d = algo
                .discover_with(&rel, &DiscoverOptions::new(2), &Control::default())
                .unwrap();
            assert!(d.stats.candidates > 0, "{algo} must count candidate tests");
            assert!(
                d.stats.phases.iter().any(|p| p.name == "total"),
                "{algo} must record a total phase"
            );
        }
        // free sets are counted exactly once, however constant CFDs are
        // delegated: FastCFD and CFDMiner mine the same k-frequent sets
        let opts = DiscoverOptions::new(2);
        let fast = Algo::FastCfd
            .discover_with(&rel, &opts, &Control::default())
            .unwrap();
        let miner = Algo::CfdMiner
            .discover_with(&rel, &opts, &Control::default())
            .unwrap();
        assert_eq!(fast.stats.free_sets, miner.stats.free_sets);
    }

    #[test]
    fn discovery_serializes_to_parseable_json() {
        let rel = cust_relation();
        // max_lhs is the one option ctane-with-threads leaves for a
        // note — except ctane honors it too, so use fastcfd to keep a
        // note in the document
        let d = Algo::FastCfd
            .discover_with(
                &rel,
                &DiscoverOptions::new(2).threads(2).max_lhs(2),
                &Control::default(),
            )
            .unwrap();
        let doc = d.to_json(&rel);
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(
            back.get("algorithm").and_then(Json::as_str),
            Some("fastcfd")
        );
        let rules = back.get("rules").unwrap().as_array().unwrap();
        assert_eq!(rules.len(), d.cover.len());
        // every rule's wire text parses back against the relation
        for r in rules {
            let text = r.get("text").unwrap().as_str().unwrap();
            assert!(cfd_model::cfd::parse_cfd(&rel, text).is_ok(), "{text}");
        }
        let notes = back.get("notes").unwrap().as_array().unwrap();
        assert_eq!(notes.len(), 1);
        assert_eq!(
            notes[0].get("option").and_then(Json::as_str),
            Some("max-lhs")
        );
    }

    #[test]
    fn every_discovery_is_measured() {
        let rel = cust_relation();
        for algo in Algo::all() {
            let d = algo
                .discover_with(&rel, &DiscoverOptions::new(2), &Control::default())
                .unwrap();
            assert_eq!(d.measures.len(), d.cover.len(), "{algo}");
            // exact discovery: every rule holds, so every measure is clean
            for (cfd, m) in d.cover.iter().zip(&d.measures) {
                assert_eq!(*m, cfd_model::measure::measure(&rel, cfd), "{algo}");
                assert_eq!(m.violations, 0, "{algo}: {}", cfd.display(&rel));
                assert!(m.support >= 2, "{algo}: k-frequency");
            }
            assert!(
                d.stats.phases.iter().any(|p| p.name == "measure"),
                "{algo} must time the measuring pass"
            );
        }
    }

    #[test]
    fn min_confidence_thresholds_and_notes() {
        use cfd_model::cfd::parse_cfd;
        let rel = cust_relation();
        let opts = DiscoverOptions::new(2).min_confidence(0.6);
        // ctane honors θ: the noisy rule appears, measured below 1.0
        let d = Algo::Ctane
            .discover_with(&rel, &opts, &Control::default())
            .unwrap();
        assert!(d.notes.is_empty());
        let noisy = parse_cfd(&rel, "(AC -> CT, (131 || EDI))").unwrap();
        assert!(d.cover.contains(&noisy));
        for (cfd, m) in d.cover.iter().zip(&d.measures) {
            assert!(
                m.confidence() + 1e-9 >= 0.6,
                "{} at {}",
                cfd.display(&rel),
                m.confidence()
            );
        }
        // fastcfd is exact-only: same options produce the exact cover
        // plus a machine-readable note
        let exact = Algo::FastCfd
            .discover_with(&rel, &DiscoverOptions::new(2), &Control::default())
            .unwrap();
        let d = Algo::FastCfd
            .discover_with(&rel, &opts, &Control::default())
            .unwrap();
        assert_eq!(d.cover.cfds(), exact.cover.cfds());
        assert_eq!(d.notes.len(), 1);
        assert_eq!(d.notes[0].option, "min-confidence");
        // out-of-range thresholds are rejected up front
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let opts = DiscoverOptions::new(2).min_confidence(bad);
            assert!(
                matches!(opts.validate(&rel), Err(DiscoverError::Options(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn top_k_ranks_by_confidence_then_support() {
        let rel = cust_relation();
        let full = Algo::Ctane
            .discover_with(
                &rel,
                &DiscoverOptions::new(2).min_confidence(0.6),
                &Control::default(),
            )
            .unwrap();
        assert!(full.cover.len() > 5, "premise: enough rules to truncate");
        let top = Algo::Ctane
            .discover_with(
                &rel,
                &DiscoverOptions::new(2).min_confidence(0.6).top_k(5),
                &Control::default(),
            )
            .unwrap();
        assert_eq!(top.cover.len(), 5);
        assert_eq!(top.measures.len(), 5);
        // the kept rules are a subset of the full run, measured alike
        for (cfd, m) in top.cover.iter().zip(&top.measures) {
            let i = full
                .cover
                .cfds()
                .iter()
                .position(|c| c == cfd)
                .expect("top-k rules come from the full cover");
            assert_eq!(*m, full.measures[i]);
        }
        // nothing kept scores below anything dropped
        let score = |m: &RuleMeasure| (m.confidence(), m.support);
        let worst_kept =
            top.measures
                .iter()
                .map(&score)
                .fold(
                    (f64::INFINITY, usize::MAX),
                    |a, b| {
                        if b < a {
                            b
                        } else {
                            a
                        }
                    },
                );
        for (cfd, m) in full.cover.iter().zip(&full.measures) {
            if !top.cover.contains(cfd) {
                assert!(
                    score(m) <= worst_kept,
                    "dropped {} outranks a kept rule",
                    cfd.display(&rel)
                );
            }
        }
        // top_k larger than the cover is a no-op; 0 is rejected
        let all = Algo::Ctane
            .discover_with(
                &rel,
                &DiscoverOptions::new(2).top_k(10_000),
                &Control::default(),
            )
            .unwrap();
        let plain = Algo::Ctane
            .discover_with(&rel, &DiscoverOptions::new(2), &Control::default())
            .unwrap();
        assert_eq!(all.cover.cfds(), plain.cover.cfds());
        assert!(DiscoverOptions::new(2).top_k(0).validate(&rel).is_err());
    }

    #[test]
    fn annotated_text_round_trips() {
        let rel = cust_relation();
        let d = Algo::Ctane
            .discover_with(
                &rel,
                &DiscoverOptions::new(2).min_confidence(0.6),
                &Control::default(),
            )
            .unwrap();
        let text = d.to_annotated_text(&rel);
        assert!(text.contains(" [support="), "{text}");
        let (cover, measures) = CanonicalCover::from_annotated_text(&rel, &text).unwrap();
        assert_eq!(cover.cfds(), d.cover.cfds());
        let back: Vec<_> = measures.into_iter().map(Option::unwrap).collect();
        assert_eq!(back, d.measures);
        // the plain parser accepts annotated text too, dropping measures
        assert_eq!(
            CanonicalCover::from_text(&rel, &text).unwrap().cfds(),
            d.cover.cfds()
        );
    }

    #[test]
    fn bruteforce_refuses_wide_relations_gracefully() {
        use cfd_model::relation::relation_from_rows;
        use cfd_model::schema::Schema;
        let names: Vec<String> = (0..11).map(|i| format!("A{i}")).collect();
        let row: Vec<&str> = (0..11).map(|_| "x").collect();
        let rel = relation_from_rows(Schema::new(names).unwrap(), &[row.clone(), row]).unwrap();
        let r = Algo::BruteForce.discover_with(&rel, &DiscoverOptions::new(1), &Control::default());
        assert!(matches!(r, Err(DiscoverError::Unsupported(_))));
    }
}
