//! Quickstart: discover the CFDs of the paper's running example.
//!
//! Builds the `cust` relation of Fig. 1, runs discovery through the
//! unified `Discoverer` API, and prints the canonical cover in the
//! stable wire-format.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cfd_suite::datagen::cust::cust_relation;
use cfd_suite::prelude::*;

fn main() {
    let rel = cust_relation();
    println!("The cust relation of Fig. 1 ({} tuples):", rel.n_rows());
    println!("{rel:?}");

    let opts = DiscoverOptions::new(2); // patterns must match ≥ 2 tuples
    let ctrl = Control::default();

    // CFDMiner: constant CFDs only (object-identification rules)
    let constants = Algo::CfdMiner.discover_with(&rel, &opts, &ctrl).unwrap();
    println!(
        "CFDMiner — {} minimal {}-frequent constant CFDs in {:.2?}:",
        constants.cover.len(),
        opts.k,
        constants.total_time(),
    );
    print!("{}", constants.cover.to_text(&rel));

    // FastCFD: the full canonical cover (constant + variable CFDs)
    let fast = Algo::FastCfd.discover_with(&rel, &opts, &ctrl).unwrap();
    let (n_const, n_var) = fast.cover.counts();
    println!("\nFastCFD — canonical cover ({n_const} constant + {n_var} variable):");
    print!("{}", fast.cover.to_text(&rel));

    // CTANE produces the same cover by a level-wise search — and the
    // structured outcome says how hard each algorithm worked
    let ctane = Algo::Ctane.discover_with(&rel, &opts, &ctrl).unwrap();
    assert_eq!(
        ctane.cover.cfds(),
        fast.cover.cfds(),
        "CTANE and FastCFD agree"
    );
    println!(
        "\nCTANE agrees on all {} rules ({} candidate tests, {} partitions; \
         FastCFD tested {} covers over {} difference-set families).",
        fast.cover.len(),
        ctane.stats.candidates,
        ctane.stats.partitions,
        fast.stats.candidates,
        fast.stats.diff_set_families,
    );

    // every discovered rule really holds
    assert!(fast.cover.iter().all(|c| satisfies(&rel, c)));
    // CFDMiner is exactly the constant fragment
    assert_eq!(constants.cover.cfds(), fast.cover.constant_cover().cfds());
    // and the wire-format round-trips: what discover prints, check parses
    let text = fast.cover.to_text(&rel);
    assert_eq!(
        CanonicalCover::from_text(&rel, &text).unwrap().cfds(),
        fast.cover.cfds()
    );
    println!("All rules verified against the instance; wire-format round-trips.");
}
