//! The minimality (left-reducedness) oracle of Section 2.2.1.
//!
//! A CFD in a canonical cover must be *nontrivial* and *left-reduced*:
//!
//! * constant CFD `(X → A, (tp ‖ a))`: no proper subset `Y ⊊ X` satisfies
//!   `(Y → A, (tp[Y] ‖ a))`;
//! * variable CFD `(X → A, (tp ‖ _))`: (1) no proper subset of `X` works,
//!   and (2) no constant of `tp` can be upgraded to `_`.
//!
//! Because satisfaction is monotone in the LHS (adding attributes or
//! specializing patterns preserves it), checking the *immediate*
//! reductions suffices; this module is the independent referee used by
//! the test suites to audit every algorithm's output.

use cfd_model::cfd::{Cfd, CfdClass};
use cfd_model::pattern::PVal;
use cfd_model::relation::Relation;
use cfd_model::satisfy::satisfies;
use cfd_model::support::support;

/// True iff `cfd` holds on `rel` and is `k`-frequent.
pub fn holds_and_frequent(rel: &Relation, cfd: &Cfd, k: usize) -> bool {
    support(rel, cfd) >= k && satisfies(rel, cfd)
}

/// True iff `cfd` is a minimal (nontrivial, left-reduced) CFD of `rel`
/// that holds and is `k`-frequent. Mixed CFDs (constant RHS with wildcard
/// LHS values) are never minimal: Lemma 1 drops their wildcard attributes.
pub fn is_minimal(rel: &Relation, cfd: &Cfd, k: usize) -> bool {
    if cfd.is_trivial() || !holds_and_frequent(rel, cfd, k) {
        return false;
    }
    let lhs = cfd.lhs();
    let rhs = cfd.rhs_attr();
    match cfd.class() {
        CfdClass::Mixed => false,
        CfdClass::Constant => {
            // no single LHS attribute may be droppable
            lhs.attrs().iter().all(|b| {
                let reduced = Cfd::new(lhs.without(b), rhs, cfd.rhs_val());
                !satisfies(rel, &reduced)
            })
        }
        CfdClass::Variable => {
            // (1) attribute minimality: no attribute droppable
            let attr_min = lhs.attrs().iter().all(|b| {
                let reduced = Cfd::variable(lhs.without(b), rhs);
                !satisfies(rel, &reduced)
            });
            if !attr_min {
                return false;
            }
            // (2) pattern minimality: no constant upgradeable to `_`
            lhs.iter().filter(|&(_, v)| v.is_const()).all(|(b, _)| {
                let upgraded = Cfd::variable(lhs.with(b, PVal::Var), rhs);
                !satisfies(rel, &upgraded)
            })
        }
    }
}

/// Audits a whole cover: returns the offending CFD descriptions, empty
/// when every CFD is minimal, `k`-frequent and holds.
pub fn audit_cover<'a, I>(rel: &Relation, cfds: I, k: usize) -> Vec<String>
where
    I: IntoIterator<Item = &'a Cfd>,
{
    let mut problems = Vec::new();
    for cfd in cfds {
        if cfd.is_trivial() {
            problems.push(format!("trivial: {}", cfd.display(rel)));
        } else if !satisfies(rel, cfd) {
            problems.push(format!("violated: {}", cfd.display(rel)));
        } else if support(rel, cfd) < k {
            problems.push(format!("infrequent: {}", cfd.display(rel)));
        } else if !is_minimal(rel, cfd, k) {
            problems.push(format!("not minimal: {}", cfd.display(rel)));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::cust_relation;
    use cfd_model::cfd::parse_cfd;

    #[test]
    fn example5_minimality_claims() {
        let r = cust_relation();
        // φ2 is a minimal constant CFD
        let phi2 = parse_cfd(&r, "([CC, AC] -> CT, (44, 131 || EDI))").unwrap();
        assert!(is_minimal(&r, &phi2, 1));
        // φ3 is not minimal: CC can be dropped
        let phi3 = parse_cfd(&r, "([CC, AC] -> CT, (01, 212 || NYC))").unwrap();
        assert!(!is_minimal(&r, &phi3, 1));
        // φ1 is not minimal: CC can be dropped
        let phi1 = parse_cfd(&r, "([CC, AC] -> CT, (01, 908 || MH))").unwrap();
        assert!(!is_minimal(&r, &phi1, 1));
        // its reduction is minimal
        let red = parse_cfd(&r, "(AC -> CT, (908 || MH))").unwrap();
        assert!(is_minimal(&r, &red, 1));
        // f1, f2 and φ0 are minimal variable CFDs
        for txt in [
            "([CC, AC] -> CT, (_, _ || _))",
            "([CC, AC, PN] -> STR, (_, _, _ || _))",
            "([CC, ZIP] -> STR, (44, _ || _))",
        ] {
            let c = parse_cfd(&r, txt).unwrap();
            assert!(is_minimal(&r, &c, 1), "{txt} must be minimal");
        }
    }

    #[test]
    fn example5_pattern_upgrades_are_redundant() {
        // the f1-instances (01,_), (44,_), (_,908), (_,212), (_,131) all
        // hold but are not minimal: (_,_) is more general
        let r = cust_relation();
        for txt in [
            "([CC, AC] -> CT, (01, _ || _))",
            "([CC, AC] -> CT, (44, _ || _))",
            "([CC, AC] -> CT, (_, 908 || _))",
            "([CC, AC] -> CT, (_, 212 || _))",
            "([CC, AC] -> CT, (_, 131 || _))",
        ] {
            let c = parse_cfd(&r, txt).unwrap();
            assert!(satisfies(&r, &c), "{txt} holds");
            assert!(!is_minimal(&r, &c, 1), "{txt} is redundant");
        }
    }

    #[test]
    fn frequency_gates_minimality() {
        let r = cust_relation();
        let phi2 = parse_cfd(&r, "([CC, AC] -> CT, (44, 131 || EDI))").unwrap();
        assert!(is_minimal(&r, &phi2, 2));
        assert!(!is_minimal(&r, &phi2, 3), "φ2 is only 2-frequent");
    }

    #[test]
    fn trivial_and_mixed_rejected() {
        let r = cust_relation();
        let t = parse_cfd(&r, "(CT -> CT, (_ || _))").unwrap();
        assert!(!is_minimal(&r, &t, 1));
        let mixed = parse_cfd(&r, "([CC, AC] -> CT, (_, 908 || MH))").unwrap();
        assert!(!is_minimal(&r, &mixed, 1));
    }

    #[test]
    fn audit_reports_each_problem_kind() {
        let r = cust_relation();
        let good = parse_cfd(&r, "(AC -> CT, (908 || MH))").unwrap();
        let violated = parse_cfd(&r, "(AC -> CT, (131 || EDI))").unwrap();
        let nonmin = parse_cfd(&r, "([CC, AC] -> CT, (01, 212 || NYC))").unwrap();
        let problems = audit_cover(&r, [&good, &violated, &nonmin], 1);
        assert_eq!(problems.len(), 2);
        assert!(problems[0].contains("violated"));
        assert!(problems[1].contains("not minimal"));
    }
}
