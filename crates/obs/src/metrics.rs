//! Named counters, gauges and histograms behind a sharded registry.
//!
//! [`Registry`] is the canonical implementation of
//! `cfd_model::progress::MetricsSink`: instrumented layers emit through
//! the trait (usually via `Control::metric_add` and friends) and never
//! see this type. Internally metrics are striped over a fixed set of
//! mutex-guarded shards by an FNV hash of the metric *name*, so two
//! threads bumping different counters rarely share a lock; names are
//! `&'static str`, so registration never allocates for the key.
//!
//! [`Registry::snapshot`] freezes everything into a [`MetricsSnapshot`]
//! — plain owned data, sorted by name — which serializes through
//! `cfd_model::json` ([`MetricsSnapshot::to_json`]) and parses back
//! ([`MetricsSnapshot::from_json`]). Values survive the round trip
//! exactly up to 2^53 (the JSON number is an `f64`); the CFD workloads'
//! counters sit far below that.

use cfd_model::json::Json;
use cfd_model::progress::MetricsSink;
use std::sync::Mutex;

const SHARDS: usize = 8;

/// Histogram bucket count: bucket 0 holds value 0, bucket *i* ≥ 1 holds
/// values with bit length *i*, i.e. the range `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// The power-of-two bucket index for `value`.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

#[derive(Clone)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }
}

#[derive(Default)]
struct Shard {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

fn slot<'v, V>(entries: &'v mut Vec<(&'static str, V)>, name: &'static str, init: V) -> &'v mut V {
    // Linear probe: a run touches a few dozen distinct names per shard
    // at most, and the probe is over a dense Vec — cheaper than hashing
    // into a map and allocation-free after warmup.
    match entries.iter().position(|(n, _)| *n == name) {
        Some(i) => &mut entries[i].1,
        None => {
            entries.push((name, init));
            &mut entries.last_mut().unwrap().1
        }
    }
}

/// FNV-1a over the name bytes — stable, fast, good enough to spread a
/// handful of metric names over [`SHARDS`] stripes.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h as usize % SHARDS
}

/// A thread-safe registry of named counters, gauges and histograms.
///
/// ```
/// use cfd_model::progress::MetricsSink;
/// let reg = cfd_obs::Registry::new();
/// reg.add("validate.rows_scanned", 3);
/// reg.add("validate.rows_scanned", 4);
/// reg.observe("stream.batch_rows", 100);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("validate.rows_scanned"), Some(7));
/// assert_eq!(snap.histogram("stream.batch_rows").unwrap().count, 1);
/// ```
pub struct Registry {
    shards: [Mutex<Shard>; SHARDS],
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            shards: [const { Mutex::new(Shard::new_const()) }; SHARDS],
        }
    }

    /// Freezes current values into an owned, name-sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap();
            for &(n, v) in &s.counters {
                snap.counters.push((n.to_string(), v));
            }
            for &(n, v) in &s.gauges {
                snap.gauges.push((n.to_string(), v));
            }
            for (n, h) in &s.histograms {
                snap.histograms.push((
                    n.to_string(),
                    HistogramSnapshot {
                        count: h.count,
                        sum: h.sum,
                        min: if h.count == 0 { 0 } else { h.min },
                        max: h.max,
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|&(_, &c)| c > 0)
                            .map(|(i, &c)| (i as u32, c))
                            .collect(),
                    },
                ));
            }
        }
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

impl Shard {
    const fn new_const() -> Shard {
        Shard {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl MetricsSink for Registry {
    fn add(&self, name: &'static str, delta: u64) {
        let mut s = self.shards[shard_of(name)].lock().unwrap();
        *slot(&mut s.counters, name, 0) += delta;
    }

    fn set_gauge(&self, name: &'static str, value: u64) {
        let mut s = self.shards[shard_of(name)].lock().unwrap();
        *slot(&mut s.gauges, name, 0) = value;
    }

    fn observe(&self, name: &'static str, value: u64) {
        let mut s = self.shards[shard_of(name)].lock().unwrap();
        slot(&mut s.histograms, name, Histogram::new()).observe(value);
    }

    fn spans_enabled(&self) -> bool {
        crate::trace::tracing_enabled()
    }

    fn record_span(&self, name: &'static str, start: std::time::Instant, dur: std::time::Duration) {
        crate::trace::record_span(name, start, dur);
    }
}

/// Frozen state of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty power-of-two buckets as `(bucket_index, count)`;
    /// bucket 0 is the value 0, bucket *i* ≥ 1 covers `[2^(i-1), 2^i)`.
    pub buckets: Vec<(u32, u64)>,
}

/// Frozen state of a [`Registry`]: every metric, sorted by name.
///
/// Counters and gauges whose emission is deterministic (rows scanned,
/// groups built, batch deltas) are identical across thread counts;
/// traffic-shaped counters (store evictions under a byte budget racing
/// across workers) can legitimately differ — DESIGN.md §10 marks which
/// are which.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Accumulating counters.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(String, u64)>,
    /// Value distributions.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Accumulates `other`: counters add, gauges take `other`'s value,
    /// histograms merge counts/sums/extrema/buckets. Used to combine
    /// per-worker registries when a caller runs one per thread.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (n, v) in &other.counters {
            match self.counters.iter().position(|(sn, _)| sn == n) {
                Some(i) => self.counters[i].1 += v,
                None => self.counters.push((n.clone(), *v)),
            }
        }
        for (n, v) in &other.gauges {
            match self.gauges.iter().position(|(sn, _)| sn == n) {
                Some(i) => self.gauges[i].1 = *v,
                None => self.gauges.push((n.clone(), *v)),
            }
        }
        for (n, h) in &other.histograms {
            match self.histograms.iter().position(|(sn, _)| sn == n) {
                Some(i) => {
                    let mine = &mut self.histograms[i].1;
                    let merged_min = if mine.count == 0 {
                        h.min
                    } else if h.count == 0 {
                        mine.min
                    } else {
                        mine.min.min(h.min)
                    };
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = merged_min;
                    mine.max = mine.max.max(h.max);
                    for &(b, c) in &h.buckets {
                        match mine.buckets.iter().position(|&(mb, _)| mb == b) {
                            Some(j) => mine.buckets[j].1 += c,
                            None => mine.buckets.push((b, c)),
                        }
                    }
                    mine.buckets.sort_unstable_by_key(|&(b, _)| b);
                }
                None => self.histograms.push((n.clone(), h.clone())),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Serializes through `cfd_model::json`. Shape:
    ///
    /// ```json
    /// {"counters":{"a":1},"gauges":{"g":2},
    ///  "histograms":{"h":{"count":1,"sum":4,"min":4,"max":4,"buckets":[[3,1]]}}}
    /// ```
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::from(*v))),
                ),
            ),
            (
                "gauges",
                Json::obj(self.gauges.iter().map(|(n, v)| (n.clone(), Json::from(*v)))),
            ),
            (
                "histograms",
                Json::obj(self.histograms.iter().map(|(n, h)| {
                    (
                        n.clone(),
                        Json::obj([
                            ("count", Json::from(h.count)),
                            ("sum", Json::from(h.sum)),
                            ("min", Json::from(h.min)),
                            ("max", Json::from(h.max)),
                            (
                                "buckets",
                                Json::arr(
                                    h.buckets
                                        .iter()
                                        .map(|&(b, c)| Json::arr([Json::from(b), Json::from(c)])),
                                ),
                            ),
                        ]),
                    )
                })),
            ),
        ])
    }

    /// Parses a document produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(doc: &Json) -> Option<MetricsSnapshot> {
        fn as_u64(j: &Json) -> Option<u64> {
            let n = j.as_f64()?;
            (n >= 0.0 && n.fract() == 0.0 && n <= 9.0e15).then_some(n as u64)
        }
        fn pairs(j: &Json) -> Option<&[(String, Json)]> {
            match j {
                Json::Obj(p) => Some(p),
                _ => None,
            }
        }
        let mut snap = MetricsSnapshot::default();
        for (n, v) in pairs(doc.get("counters")?)? {
            snap.counters.push((n.clone(), as_u64(v)?));
        }
        for (n, v) in pairs(doc.get("gauges")?)? {
            snap.gauges.push((n.clone(), as_u64(v)?));
        }
        for (n, h) in pairs(doc.get("histograms")?)? {
            let mut buckets = Vec::new();
            for pair in h.get("buckets")?.as_array()? {
                let pair = pair.as_array()?;
                if pair.len() != 2 {
                    return None;
                }
                buckets.push((as_u64(&pair[0])? as u32, as_u64(&pair[1])?));
            }
            snap.histograms.push((
                n.clone(),
                HistogramSnapshot {
                    count: as_u64(h.get("count")?)?,
                    sum: as_u64(h.get("sum")?)?,
                    min: as_u64(h.get("min")?)?,
                    max: as_u64(h.get("max")?)?,
                    buckets,
                },
            ));
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let reg = Registry::new();
        reg.add("c", 1);
        reg.add("c", 41);
        reg.add("other", 5);
        reg.set_gauge("g", 10);
        reg.set_gauge("g", 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(42));
        assert_eq!(snap.counter("other"), Some(5));
        assert_eq!(snap.counter("absent"), None);
        assert_eq!(snap.gauge("g"), Some(3));
    }

    #[test]
    fn histogram_tracks_extrema_and_buckets() {
        let reg = Registry::new();
        for v in [0, 1, 5, 5, 700] {
            reg.observe("h", v);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 711);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 700);
        // 0 → bucket 0; 1 → bucket 1; 5,5 → bucket 3; 700 → bucket 10
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (3, 2), (10, 1)]);
    }

    #[test]
    fn concurrent_adds_merge_into_one_counter() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        reg.add("hot", 1);
                        reg.observe("dist", 2);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hot"), Some(4000));
        assert_eq!(snap.histogram("dist").unwrap().count, 4000);
        assert_eq!(snap.histogram("dist").unwrap().sum, 8000);
    }

    #[test]
    fn snapshots_are_name_sorted() {
        let reg = Registry::new();
        for name in ["zeta", "alpha", "mid"] {
            reg.add(name, 1);
        }
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn merge_adds_counters_and_combines_histograms() {
        let a_reg = Registry::new();
        a_reg.add("c", 1);
        a_reg.observe("h", 4);
        let b_reg = Registry::new();
        b_reg.add("c", 2);
        b_reg.add("only_b", 7);
        b_reg.set_gauge("g", 9);
        b_reg.observe("h", 1);
        let mut a = a_reg.snapshot();
        a.merge(&b_reg.snapshot());
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.counter("only_b"), Some(7));
        assert_eq!(a.gauge("g"), Some(9));
        let h = a.histogram("h").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 5, 1, 4));
        assert_eq!(h.buckets, vec![(1, 1), (3, 1)]);
    }

    #[test]
    fn json_round_trip_exact() {
        let reg = Registry::new();
        reg.add("validate.rows_scanned", 123_456);
        reg.set_gauge("store.bytes", 1 << 20);
        reg.observe("stream.batch_rows", 0);
        reg.observe("stream.batch_rows", 512);
        let snap = reg.snapshot();
        let doc = snap.to_json();
        let text = doc.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(MetricsSnapshot::from_json(&parsed), Some(snap));
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        for bad in [
            r#"{}"#,
            r#"{"counters":{},"gauges":{}}"#,
            r#"{"counters":{"c":-1},"gauges":{},"histograms":{}}"#,
            r#"{"counters":{"c":1.5},"gauges":{},"histograms":{}}"#,
            r#"{"counters":{},"gauges":{},"histograms":{"h":{"count":1}}}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(MetricsSnapshot::from_json(&doc).is_none(), "{bad}");
        }
    }
}
