//! Cell-level error injection — the "dirty data" side of the cleaning
//! scenario (Section 1: CFDs are discovered on samples and then used as
//! cleaning rules).

use cfd_model::relation::{Relation, TupleId};
use cfd_model::schema::AttrId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Copies `rel`, flipping each cell with probability `rate` to a
/// different value drawn from the same column's active domain. Returns
/// the dirty relation and the list of corrupted cells (ground truth for
/// precision/recall bookkeeping in the cleaning demo).
///
/// The copy *shares the original's dictionaries* (codes are edited in
/// place), so rules discovered on the clean relation evaluate directly on
/// the dirty one — no code-space translation needed.
pub fn inject_noise(rel: &Relation, rate: f64, seed: u64) -> (Relation, Vec<(TupleId, AttrId)>) {
    assert!((0.0..=1.0).contains(&rate));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corrupted = Vec::new();
    let mut edits: Vec<(TupleId, AttrId, u32)> = Vec::new();
    for t in rel.tuples() {
        for a in 0..rel.arity() {
            let dom = rel.column(a).domain_size();
            let original = rel.code(t, a);
            if dom > 1 && rng.gen_bool(rate) {
                // pick a different value from the active domain
                let mut other = rng.gen_range(0..dom as u32 - 1);
                if other >= original {
                    other += 1;
                }
                edits.push((t, a, other));
                corrupted.push((t, a));
            }
        }
    }
    (rel.with_replaced_codes(&edits), corrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cust::cust_relation;

    #[test]
    fn zero_rate_is_identity() {
        let r = cust_relation();
        let (d, cells) = inject_noise(&r, 0.0, 1);
        assert!(cells.is_empty());
        for t in r.tuples() {
            assert_eq!(r.tuple_values(t), d.tuple_values(t));
        }
    }

    #[test]
    fn corrupted_cells_differ_from_original() {
        let r = cust_relation();
        let (d, cells) = inject_noise(&r, 0.3, 7);
        assert!(!cells.is_empty());
        for &(t, a) in &cells {
            assert_ne!(r.value(t, a), d.value(t, a), "cell ({t},{a})");
        }
        // untouched cells are identical
        let dirty: std::collections::HashSet<_> = cells.iter().copied().collect();
        for t in r.tuples() {
            for a in 0..r.arity() {
                if !dirty.contains(&(t, a)) {
                    assert_eq!(r.value(t, a), d.value(t, a));
                }
            }
        }
    }

    #[test]
    fn rate_scales_corruption() {
        let r = crate::tax::TaxGenerator::new(800).generate();
        let (_, few) = inject_noise(&r, 0.01, 3);
        let (_, many) = inject_noise(&r, 0.2, 3);
        assert!(few.len() < many.len());
        let total_cells = r.n_rows() * r.arity();
        let frac = many.len() as f64 / total_cells as f64;
        assert!((0.15..0.25).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let r = cust_relation();
        let (d1, c1) = inject_noise(&r, 0.2, 9);
        let (d2, c2) = inject_noise(&r, 0.2, 9);
        assert_eq!(c1, c2);
        for t in d1.tuples() {
            assert_eq!(d1.tuple_values(t), d2.tuple_values(t));
        }
    }
}
