//! CFDMiner — constant CFD discovery via free/closed item sets
//! (Section 3 of the paper).
//!
//! Proposition 1 characterizes the minimal k-frequent constant CFDs
//! `(X → A, (tp ‖ a))` of an instance: `(X, tp)` is a k-frequent *free*
//! set not containing `(A, a)`, the closure `clo(X, tp)` contains
//! `(A, a)`, and no smaller free pattern inside `(X, tp)` has `(A, a)` in
//! its closure. Because free sets are downward closed and closure is
//! antitone in the pattern order, the last condition reduces to the
//! *immediate* free sub-patterns:
//!
//! ```text
//! RHS(X, tp) = (clo(X, tp) \ (X, tp)) \ ⋃_{B ∈ X} clo((X, tp) \ B)
//! ```
//!
//! (see DESIGN.md §2 for why this replaces the paper's step 3a
//! intersection, which as printed would keep exactly the redundant
//! items).

use cfd_itemset::mine::{mine_free_closed, MineOptions, Mined};
use cfd_model::cfd::Cfd;
use cfd_model::cover::CanonicalCover;
use cfd_model::fxhash::FxHashMap;
use cfd_model::measure::{keep_meets, RuleMeasure};
use cfd_model::pattern::PVal;
use cfd_model::progress::{Cancelled, Control, SearchStats};
use cfd_model::relation::Relation;

/// Constant CFD discovery (Section 3.2).
#[derive(Clone, Copy, Debug)]
pub struct CfdMiner {
    k: usize,
    min_confidence: f64,
    threads: usize,
}

impl CfdMiner {
    /// Creates a miner with support threshold `k ≥ 1`.
    pub fn new(k: usize) -> CfdMiner {
        assert!(k >= 1, "support threshold must be at least 1");
        CfdMiner {
            k,
            min_confidence: 1.0,
            threads: 1,
        }
    }

    /// Shards the item-set mining pass (per-level closures and the
    /// deep-level prefix joins) across `threads` workers; `1` (the
    /// default) mines serially. Output is byte-identical for every
    /// thread count.
    pub fn threads(mut self, threads: usize) -> CfdMiner {
        self.threads = threads.max(1);
        self
    }

    /// Relaxes validity to confidence `θ ∈ (0, 1]`: a constant CFD
    /// `(X → A, (tp ‖ a))` is emitted when at least a `θ`-fraction of
    /// the tuples matching `tp` carry `a` (and at least `k` of them
    /// do — the k-frequency of the full pattern). `1.0` (the default)
    /// is the exact free/closed-set path of Section 3.
    pub fn min_confidence(mut self, theta: f64) -> CfdMiner {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "min_confidence must be within (0, 1]"
        );
        self.min_confidence = theta;
        self
    }

    /// The configured support threshold.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Discovers the canonical cover of minimal k-frequent *constant*
    /// CFDs of `rel`.
    pub fn discover(&self, rel: &Relation) -> CanonicalCover {
        self.run(rel, &Control::default(), &mut SearchStats::default())
            .expect("default Control is never cancelled")
    }

    /// [`CfdMiner::discover`] with run control and instrumentation:
    /// polls `ctrl` after the mining phase, times `mine`, and counts
    /// free/closed sets plus candidate RHS items (`candidates`) and
    /// items rejected as non-minimal (`pruned`).
    pub fn run(
        &self,
        rel: &Relation,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, Cancelled> {
        Ok(self.run_measured(rel, ctrl, stats)?.0)
    }

    /// [`CfdMiner::run`], additionally returning each rule's
    /// [`RuleMeasure`] (aligned with the cover's canonical order) —
    /// free-set supports and per-value frequencies the mining pass
    /// already computed, so no separate measuring scan is needed.
    pub fn run_measured(
        &self,
        rel: &Relation,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Vec<RuleMeasure>), Cancelled> {
        let t0 = std::time::Instant::now();
        // the approximate pass needs each free set's supporting tuples
        // to take per-attribute majorities; the exact pass does not
        let approx = self.min_confidence < 1.0;
        let mined = mine_free_closed(
            rel,
            self.k,
            MineOptions {
                keep_tids: approx,
                threads: self.threads,
                ..MineOptions::default()
            },
        );
        stats.phase("mine", t0.elapsed());
        ctrl.check()?;
        ctrl.report("mine", 1, 1);
        let t1 = std::time::Instant::now();
        let (out, meas) = if approx {
            self.approx_rules(rel, &mined, stats)
        } else {
            self.exact_rules(&mined, stats)
        };
        stats.phase("rhs-items", t1.elapsed());
        Ok(CanonicalCover::from_measured(
            out.into_iter().zip(meas).collect(),
        ))
    }

    /// Discovery over an existing mining result (FastCFD shares the
    /// k-frequent free sets with CFDMiner, so the mining cost is paid
    /// once).
    pub fn discover_from_mined(&self, mined: &Mined) -> CanonicalCover {
        self.mined_with_stats(mined, &mut SearchStats::default())
    }

    /// [`CfdMiner::discover_from_mined`] filling `stats` (the entry
    /// point FastCFD shares when it delegates constant CFDs here).
    pub(crate) fn mined_with_stats(
        &self,
        mined: &Mined,
        stats: &mut SearchStats,
    ) -> CanonicalCover {
        CanonicalCover::from_cfds(self.exact_rules(mined, stats).0)
    }

    /// The exact free/closed RHS pass, with each emitted rule's measure
    /// — `RuleMeasure::exact(support)` by construction: the RHS item
    /// lies in the closure, so every supporting tuple carries it.
    fn exact_rules(&self, mined: &Mined, stats: &mut SearchStats) -> (Vec<Cfd>, Vec<RuleMeasure>) {
        stats.free_sets += mined.free.len() as u64;
        stats.closed_sets += mined.closed.len() as u64;
        let mut out: Vec<Cfd> = Vec::new();
        let mut meas: Vec<RuleMeasure> = Vec::new();
        for free in &mined.free {
            let clo = &mined.closed[free.closure as usize].pattern;
            // candidate RHS items: closure minus the free pattern itself
            let fresh = clo.attrs().difference(free.pattern.attrs());
            if fresh.is_empty() {
                continue;
            }
            // forbidden: items in the closure of any immediate free
            // sub-pattern (all of which are mined — subsets of free sets
            // are free, and support only grows downward)
            let mut forbidden = cfd_model::fxhash::FxHashSet::default();
            for b in free.pattern.attrs().iter() {
                let sub = free.pattern.without(b);
                let si = mined
                    .free_index(&sub)
                    .expect("immediate sub-pattern of a mined free set is mined");
                let sub_clo = &mined.closed[mined.free[si].closure as usize].pattern;
                for (a, v) in sub_clo.iter() {
                    forbidden.insert((a, v));
                }
            }
            for a in fresh.iter() {
                let v = clo.get(a).expect("attr drawn from closure");
                stats.candidates += 1;
                if !forbidden.contains(&(a, v)) {
                    let code = v.as_const().expect("closures are all-constant");
                    stats.emitted += 1;
                    out.push(Cfd::new(free.pattern.clone(), a, PVal::Const(code)));
                    meas.push(RuleMeasure::exact(free.support as usize));
                } else {
                    stats.pruned += 1;
                }
            }
        }
        (out, meas)
    }

    /// The θ-tolerant RHS pass: for every k-frequent free pattern
    /// `(X, tp)` and attribute `A ∉ X`, emit `(X → A, (tp ‖ a))` for
    /// each value `a` carried by a `θ`-fraction (and at least `k`) of
    /// the supporting tuples, unless some strictly more general
    /// sub-pattern already reaches `θ` for the same `(A, a)`.
    ///
    /// Free sets still suffice as generators: a non-free pattern shares
    /// its support set — hence every per-attribute frequency — with a
    /// strictly more general free pattern, so any rule it could emit is
    /// suppressed as non-minimal. Unlike the exact case, confidence is
    /// *not* monotone along the generalization order (the denominator
    /// changes with the pattern), so minimality checks **all**
    /// sub-patterns of `tp`, not just immediate ones — the analogue of
    /// CTANE's transitive `C⁺` suppression.
    fn approx_rules(
        &self,
        rel: &Relation,
        mined: &Mined,
        stats: &mut SearchStats,
    ) -> (Vec<Cfd>, Vec<RuleMeasure>) {
        let theta = self.min_confidence;
        stats.free_sets += mined.free.len() as u64;
        stats.closed_sets += mined.closed.len() as u64;
        let mut out: Vec<Cfd> = Vec::new();
        let mut meas: Vec<RuleMeasure> = Vec::new();
        // (free-set index, attr) → per-code frequency over the free
        // set's supporting tuples, memoized: every candidate probes all
        // generalizations (the empty pattern — all n rows — included),
        // so recounting per candidate would be quadratic-ish in n
        let mut freq_cache: FxHashMap<(usize, usize), FxHashMap<u32, u32>> = FxHashMap::default();
        fn freqs<'c>(
            cache: &'c mut FxHashMap<(usize, usize), FxHashMap<u32, u32>>,
            mined: &Mined,
            rel: &Relation,
            fi: usize,
            a: usize,
        ) -> &'c FxHashMap<u32, u32> {
            cache.entry((fi, a)).or_insert_with(|| {
                let col = rel.column(a);
                let mut freq = FxHashMap::default();
                for &t in mined.free[fi].tids() {
                    *freq.entry(col.code(t)).or_insert(0) += 1;
                }
                freq
            })
        }
        for (fi, free) in mined.free.iter().enumerate() {
            let supp = free.tids().len();
            let attrs = free.pattern.attrs();
            for a in (0..rel.arity()).filter(|&a| !attrs.contains(a)) {
                let candidates: Vec<(u32, usize)> = freqs(&mut freq_cache, mined, rel, fi, a)
                    .iter()
                    .map(|(&code, &cnt)| (code, cnt as usize))
                    .collect();
                for (code, cnt) in candidates {
                    if cnt < self.k || !keep_meets(cnt, supp, theta) {
                        continue;
                    }
                    stats.candidates += 1;
                    // redundant iff a strictly more general sub-pattern
                    // reaches θ for the same (A, code); sub-patterns of
                    // a free set are free and mined (downward closure)
                    let redundant = attrs.subsets().filter(|&s| s != attrs).any(|s| {
                        let sub = free.pattern.project(s);
                        let si = mined
                            .free_index(&sub)
                            .expect("sub-pattern of a mined free set is mined");
                        let sub_supp = mined.free[si].support as usize;
                        let sub_cnt = freqs(&mut freq_cache, mined, rel, si, a)
                            .get(&code)
                            .copied()
                            .unwrap_or(0) as usize;
                        keep_meets(sub_cnt, sub_supp, theta)
                    });
                    if redundant {
                        stats.pruned += 1;
                    } else {
                        stats.emitted += 1;
                        out.push(Cfd::new(free.pattern.clone(), a, PVal::Const(code)));
                        // supp tuples match the LHS; all but the cnt
                        // carrying the RHS value must be removed
                        meas.push(RuleMeasure {
                            support: supp,
                            violations: supp - cnt,
                        });
                    }
                }
            }
        }
        (out, meas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForce;
    use crate::minimality::is_minimal;
    use cfd_datagen::cust::cust_relation;
    use cfd_datagen::random::RandomRelation;
    use cfd_model::cfd::parse_cfd;

    #[test]
    fn example7_left_reduction() {
        let r = cust_relation();
        let cover = CfdMiner::new(3).discover(&r);
        // φ1 is not left-reduced (CC droppable); its reduction
        // (AC → CT, (908 ‖ MH)) is 4-frequent and minimal
        let red = parse_cfd(&r, "(AC -> CT, (908 || MH))").unwrap();
        assert!(cover.contains(&red));
        let phi1 = parse_cfd(&r, "([CC, AC] -> CT, (01, 908 || MH))").unwrap();
        assert!(!cover.contains(&phi1));
    }

    #[test]
    fn matches_brute_force_on_cust() {
        let r = cust_relation();
        for k in [1, 2, 3, 4] {
            let mined = CfdMiner::new(k).discover(&r);
            let oracle = BruteForce::new(k).discover(&r).constant_cover();
            let (only_m, only_o) = mined.diff(&oracle);
            assert!(
                only_m.is_empty() && only_o.is_empty(),
                "k={k}: miner-only {:?}, oracle-only {:?}",
                only_m.iter().map(|c| c.display(&r)).collect::<Vec<_>>(),
                only_o.iter().map(|c| c.display(&r)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn matches_brute_force_on_random_relations() {
        for seed in 0..12 {
            let r = RandomRelation::small(seed).generate();
            for k in [1, 2, 3] {
                let mined = CfdMiner::new(k).discover(&r);
                let oracle = BruteForce::new(k).discover(&r).constant_cover();
                assert_eq!(
                    mined.cfds(),
                    oracle.cfds(),
                    "seed {seed} k {k}:\nminer:\n{}\noracle:\n{}",
                    mined.display(&r),
                    oracle.display(&r)
                );
            }
        }
    }

    #[test]
    fn outputs_are_minimal_constant_cfds() {
        let r = cust_relation();
        let cover = CfdMiner::new(2).discover(&r);
        assert!(!cover.is_empty());
        for cfd in cover.iter() {
            assert!(cfd.is_constant());
            assert!(is_minimal(&r, cfd, 2), "{}", cfd.display(&r));
        }
    }

    #[test]
    fn approximate_discovery_admits_noisy_constant_rules() {
        use cfd_model::measure::measure;
        let r = cust_relation();
        // (AC → CT, (131 ‖ EDI)): 2 of the 3 AC=131 tuples agree (t8 is
        // the dissenter) — invisible exactly, found at θ = 0.6
        let noisy = parse_cfd(&r, "(AC -> CT, (131 || EDI))").unwrap();
        assert!(!CfdMiner::new(2).discover(&r).contains(&noisy));
        let approx = CfdMiner::new(2).min_confidence(0.6).discover(&r);
        assert!(
            approx.contains(&noisy),
            "θ=0.6 cover:\n{}",
            approx.display(&r)
        );
        // soundness + minimality of everything emitted
        for cfd in approx.iter() {
            assert!(cfd.is_constant());
            let m = measure(&r, cfd);
            assert!(m.meets(0.6), "{}", cfd.display(&r));
            assert!(m.support.saturating_sub(m.violations) >= 2, "k-frequency");
        }
        // θ = 1.0 goes through the exact free/closed path unchanged
        assert_eq!(
            CfdMiner::new(2).min_confidence(1.0).discover(&r).cfds(),
            CfdMiner::new(2).discover(&r).cfds()
        );
    }

    #[test]
    fn approximate_minimality_suppresses_specializations() {
        use cfd_model::measure::measure;
        // B=1 predicts C=p at 3/4; the specialization (A=x, B=1) → C=p
        // also reaches 3/4 on its own rows but is implied by the more
        // general rule and must not be emitted
        use cfd_model::relation::relation_from_rows;
        use cfd_model::schema::Schema;
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let r = relation_from_rows(
            schema,
            &[
                vec!["x", "1", "p"],
                vec!["x", "1", "p"],
                vec!["x", "1", "p"],
                vec!["x", "1", "q"],
                vec!["y", "2", "q"],
            ],
        )
        .unwrap();
        let cover = CfdMiner::new(2).min_confidence(0.7).discover(&r);
        let general = parse_cfd(&r, "(B -> C, (1 || p))").unwrap();
        assert!(cover.contains(&general), "cover:\n{}", cover.display(&r));
        let special = parse_cfd(&r, "([A, B] -> C, (x, 1 || p))").unwrap();
        assert!(measure(&r, &special).meets(0.7), "premise of the test");
        assert!(!cover.contains(&special), "cover:\n{}", cover.display(&r));
    }

    #[test]
    fn constant_column_yields_empty_lhs_cfd() {
        use cfd_model::relation::relation_from_rows;
        use cfd_model::schema::Schema;
        let schema = Schema::new(["A", "B"]).unwrap();
        let r =
            relation_from_rows(schema, &[vec!["x", "k"], vec!["y", "k"], vec!["z", "k"]]).unwrap();
        let cover = CfdMiner::new(1).discover(&r);
        let c = parse_cfd(&r, "([] -> B, ( || k))").unwrap();
        assert!(cover.contains(&c), "cover:\n{}", cover.display(&r));
    }
}
