//! Small random relations for property-based tests.
//!
//! Discovery algorithms are cross-validated (CTANE ≡ FastCFD ≡ NaiveFast,
//! CFDMiner ≡ constant fragment, brute force on tiny inputs) over many
//! random instances; this module provides the seeded instance source.

use cfd_model::relation::{Relation, RelationBuilder};
use cfd_model::schema::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a random relation.
#[derive(Clone, Copy, Debug)]
pub struct RandomRelation {
    /// Number of rows.
    pub rows: usize,
    /// Number of attributes (≤ 64).
    pub arity: usize,
    /// Active-domain size per attribute (values drawn uniformly).
    pub domain: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomRelation {
    /// A small default suitable for brute-force comparison.
    pub fn small(seed: u64) -> RandomRelation {
        RandomRelation {
            rows: 12,
            arity: 4,
            domain: 3,
            seed,
        }
    }

    /// Generates the relation (schema `A0 … A{arity-1}`).
    pub fn generate(&self) -> Relation {
        assert!(self.arity >= 1 && self.arity <= 64);
        assert!(self.domain >= 1);
        let schema = Schema::new((0..self.arity).map(|i| format!("A{i}"))).expect("valid schema");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = RelationBuilder::new(schema);
        b.reserve(self.rows);
        let mut row = vec![0u32; self.arity];
        for _ in 0..self.rows {
            for v in row.iter_mut() {
                *v = rng.gen_range(0..self.domain as u32);
            }
            b.push_coded_row(&row).expect("row width matches schema");
        }
        b.finish()
    }
}

/// Generates a batch of differently-seeded random relations.
pub fn random_relations(count: usize, base: RandomRelation) -> Vec<Relation> {
    (0..count as u64)
        .map(|i| {
            RandomRelation {
                seed: base.seed.wrapping_add(i),
                ..base
            }
            .generate()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let r = RandomRelation {
            rows: 20,
            arity: 5,
            domain: 4,
            seed: 42,
        }
        .generate();
        assert_eq!(r.n_rows(), 20);
        assert_eq!(r.arity(), 5);
        for a in 0..5 {
            assert!(r.column(a).domain_size() <= 4);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = RandomRelation::small(1).generate();
        let b = RandomRelation::small(1).generate();
        let c = RandomRelation::small(2).generate();
        for t in a.tuples() {
            assert_eq!(a.tuple_values(t), b.tuple_values(t));
        }
        assert!(a.tuples().any(|t| a.tuple_values(t) != c.tuple_values(t)));
    }

    #[test]
    fn batch_seeds_advance() {
        let batch = random_relations(3, RandomRelation::small(10));
        assert_eq!(batch.len(), 3);
        assert!(
            batch[0].tuple_values(0) != batch[1].tuple_values(0)
                || batch[0].tuple_values(1) != batch[1].tuple_values(1)
                || batch[0].tuple_values(2) != batch[1].tuple_values(2)
        );
    }
}
