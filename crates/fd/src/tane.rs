//! TANE — level-wise FD discovery (Huhtala, Kärkkäinen, Porkka &
//! Toivonen, *The Computer Journal* 42(2), 1999).
//!
//! The level-wise lattice walk CTANE generalizes: levels hold attribute
//! sets with their partitions; `C⁺(X) = {A | ∀B ∈ X : X\{A,B} ↛ B}`
//! prunes candidate RHS attributes; (super)key sets are retired early
//! after emitting their remaining dependencies.
//!
//! Like CTANE, the walk runs on the stripped-partition engine of
//! `cfd-partition` (DESIGN.md §9): node partitions live in a
//! [`PartitionStore`] keyed by attribute set — current level pinned,
//! previous level kept as evictable cache in approximate mode —
//! and level expansion refines through a reusable [`RefineScratch`]
//! into a caller-owned buffer ([`StrippedPartition::refine_into`]),
//! skipping materialization entirely for the final level
//! ([`StrippedPartition::refine_counts`]). For plain FDs stripping is
//! exactly TANE's classic representation: wildcard refinement copies
//! the singleton side list with one `memcpy` instead of walking the
//! collapsed classes. With [`Tane::threads`] above 1 the expansion
//! shards its prefix-join runs across workers and merges in run order
//! (byte-identical output for every thread count).
//!
//! With [`Tane::min_confidence`] below `1.0` the dependency test
//! relaxes to TANE's classic approximate variant under the g1-style
//! partition error (DESIGN.md §8): `X\{A} → A` is emitted when the
//! per-class max-frequency sum of `A` over `π_{X\{A}}`
//! ([`StrippedPartition::keep_count`]) reaches `θ · |r|`. For plain FDs
//! this error is monotone under refinement, so the minimality story is
//! unchanged; at `θ = 1.0` the integer short-circuit reproduces the
//! exact test bit for bit.
//!
//! Every emitted FD is measured at emission (`support = |r|`,
//! `violations` = the partition error the dependency test computed), so
//! the unified API's measuring pass costs nothing extra.

use cfd_model::attrset::AttrSet;
use cfd_model::cfd::Cfd;
use cfd_model::cover::CanonicalCover;
use cfd_model::fxhash::FxHashMap;
use cfd_model::measure::{keep_meets, RuleMeasure};
use cfd_model::pattern::PVal;
use cfd_model::progress::{shard_runs, Cancelled, Control, SearchStats};
use cfd_model::relation::Relation;
use cfd_partition::{PartitionStore, RefineScratch, RelationIndex, StrippedPartition};

/// One lattice node; its partition lives in the run's
/// [`PartitionStore`] under the attribute-set key.
struct Node {
    attrs: AttrSet,
    n_classes: usize,
    cplus: AttrSet,
}

/// A freshly generated node of the next level (partition absent for
/// the final level, whose partitions are never refined again).
struct Generated {
    node: Node,
    partition: Option<StrippedPartition>,
}

/// Level-wise minimal-FD discovery.
#[derive(Clone, Copy, Debug)]
pub struct Tane {
    pub(crate) max_lhs: Option<usize>,
    pub(crate) min_confidence: f64,
    pub(crate) threads: usize,
    pub(crate) cache_budget: usize,
}

impl Default for Tane {
    fn default() -> Tane {
        Tane::new()
    }
}

impl Tane {
    /// Creates the algorithm.
    pub fn new() -> Tane {
        Tane {
            max_lhs: None,
            min_confidence: 1.0,
            threads: 1,
            cache_budget: usize::MAX,
        }
    }

    /// Caps the LHS size of discovered FDs.
    pub fn max_lhs(mut self, m: usize) -> Tane {
        self.max_lhs = Some(m);
        self
    }

    /// Relaxes the dependency test to confidence `θ ∈ (0, 1]`
    /// (g1-style partition error — see the module docs); `1.0` (the
    /// default) is exact discovery.
    pub fn min_confidence(mut self, theta: f64) -> Tane {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "min_confidence must be within (0, 1]"
        );
        self.min_confidence = theta;
        self
    }

    /// Shards level expansion across `threads` workers (`1`, the
    /// default, keeps the serial walk); output is byte-identical for
    /// every thread count.
    pub fn threads(mut self, threads: usize) -> Tane {
        self.threads = threads.max(1);
        self
    }

    /// Byte budget for the run's partition cache (see
    /// `Ctane::cache_budget` in `cfd-core`; `0` disables caching and
    /// the approximate test rebuilds parent partitions on demand).
    pub fn cache_budget(mut self, bytes: usize) -> Tane {
        self.cache_budget = bytes;
        self
    }

    /// Rebuilds the instance with the shared knobs the unified
    /// discovery API supplies (`DiscoverOptions` is the source of
    /// truth there), keeping the ablation knobs — the cache budget —
    /// from `self`.
    pub fn with_shared_knobs(&self, max_lhs: Option<usize>, theta: f64, threads: usize) -> Tane {
        Tane {
            max_lhs,
            min_confidence: theta,
            threads: threads.max(1),
            cache_budget: self.cache_budget,
        }
    }

    /// Discovers all minimal FDs `X → A` with `X ≠ ∅` of `rel`, as
    /// all-wildcard variable CFDs.
    pub fn discover(&self, rel: &Relation) -> CanonicalCover {
        self.run(rel, &Control::default(), &mut SearchStats::default())
            .expect("default Control is never cancelled")
    }

    /// [`Tane::discover`] with run control and instrumentation: polls
    /// `ctrl` once per lattice level (and per prefix run inside the
    /// expansion workers), reports `level` progress, and counts
    /// dependency tests (`candidates`), pruned lattice nodes
    /// (`pruned`) and materialized partitions (`partitions`).
    pub fn run(
        &self,
        rel: &Relation,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, Cancelled> {
        Ok(self.run_measured(rel, ctrl, stats)?.0)
    }

    /// [`Tane::run`], additionally returning each FD's `RuleMeasure`
    /// (aligned with the cover's canonical order) — computed at
    /// emission from the partitions the walk already holds.
    pub fn run_measured(
        &self,
        rel: &Relation,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Vec<RuleMeasure>), Cancelled> {
        let col_index = RelationIndex::new(rel);
        let mut store: PartitionStore<AttrSet> = PartitionStore::new(self.cache_budget);
        self.run_measured_seeded(rel, &col_index, &mut store, ctrl, stats)
    }

    /// [`Tane::run_measured`] against a caller-owned [`RelationIndex`]
    /// and [`PartitionStore`] — the warm-start entry point mirroring
    /// `Ctane::run_measured_seeded` in `cfd-core`. Pre-seeded (or
    /// left-over) store entries are consulted by the approximate
    /// validity test before any rebuild; the cover is byte-identical to
    /// a cold run because cached partitions trade recomputation only.
    /// The caller's store keeps its own byte budget
    /// (`self.cache_budget` is ignored here), and `stats.store` reports
    /// only this run's hits and misses.
    pub fn run_measured_seeded(
        &self,
        rel: &Relation,
        col_index: &RelationIndex,
        store: &mut PartitionStore<AttrSet>,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Vec<RuleMeasure>), Cancelled> {
        let arity = rel.arity();
        let n = rel.n_rows();
        let theta = self.min_confidence;
        // approximate mode keeps the previous level's partitions as
        // cache, so candidates can be error-counted per class
        let approx = theta < 1.0;
        let mut out: Vec<Cfd> = Vec::new();
        let mut meas: Vec<RuleMeasure> = Vec::new();
        if n == 0 {
            return Ok((CanonicalCover::from_cfds(out), Vec::new()));
        }
        let stats_at_entry = store.stats();
        let mut scratch = RefineScratch::for_relation(rel);

        let full = AttrSet::full(arity);
        // level 1
        let mut level: Vec<Node> = (0..arity)
            .map(|a| {
                let p = StrippedPartition::from_value_index(col_index.column(rel, a));
                stats.partitions += 1;
                let attrs = AttrSet::singleton(a);
                let node = Node {
                    attrs,
                    n_classes: p.n_classes(),
                    cplus: full,
                };
                store.insert_pinned(attrs, 1, p);
                node
            })
            .collect();
        let mut prev_classes: FxHashMap<AttrSet, usize> = FxHashMap::default();
        prev_classes.insert(AttrSet::EMPTY, 1);
        if approx {
            store.insert_pinned(AttrSet::EMPTY, 0, StrippedPartition::full(n));
            store.unpin_level(0);
        }

        let mut ell = 1usize;
        loop {
            ctrl.check()?;
            ctrl.report("level", ell, arity);
            let _sp = cfd_obs::span!("tane.level");
            // compute dependencies
            #[allow(clippy::needless_range_loop)] // cplus is mutated in place
            for i in 0..level.len() {
                let x = level[i].attrs;
                for a in x.intersection(level[i].cplus).iter() {
                    let parent = x.without(a);
                    let &pc = prev_classes.get(&parent).expect("parent exists");
                    stats.candidates += 1;
                    // exact class-count test, or — below θ = 1.0 — the
                    // g1 relaxation keep ≥ θ·n (keep_meets short-circuits
                    // exactness with integer arithmetic); `violations`
                    // doubles as the emitted FD's measure
                    let (holds, violations) = if pc == level[i].n_classes {
                        (true, 0)
                    } else if approx {
                        let keep =
                            parent_keep(store, rel, col_index, parent, a, &mut scratch, stats);
                        (keep_meets(keep, n, theta), n - keep)
                    } else {
                        (false, 0)
                    };
                    if holds {
                        // X\{A} → A holds; ∅ → A (constant column) excluded
                        // per the canonical-cover convention
                        if !parent.is_empty() {
                            stats.emitted += 1;
                            out.push(Cfd::fd(parent, a));
                            meas.push(RuleMeasure {
                                support: n,
                                violations,
                            });
                        }
                        let cp = &mut level[i].cplus;
                        cp.remove(a);
                        // the classic RHS⁺ pruning (drop every B ∉ X)
                        // is justified by π(X\A) = π(X) — which only an
                        // *exact* dependency gives. A θ-hold with
                        // violations left removes just its own RHS:
                        // anything more over-prunes and loses minimal
                        // approximate FDs (the completeness probe below)
                        if violations == 0 {
                            *cp = cp.difference(full.difference(x));
                        }
                    }
                }
            }

            // prune: empty C⁺, then key pruning
            let keyed: Vec<bool> = level
                .iter()
                .map(|nd| nd.n_classes == n) // every class a singleton
                .collect();
            for (i, node) in level.iter().enumerate() {
                if !keyed[i] || node.cplus.is_empty() {
                    continue;
                }
                if self.max_lhs.is_some_and(|m| ell > m) {
                    break; // key-emits have LHS of size ℓ
                }
                // X is a superkey: X → A holds for every A; emit the
                // minimal ones. TANE's C⁺-intersection test is incomplete
                // here because referenced same-level sets may themselves
                // have been key-pruned away (their C⁺ no longer exists), so
                // minimality is checked directly against the relation.
                for a in node.cplus.difference(node.attrs).iter() {
                    stats.candidates += 1;
                    // under θ < 1.0 minimality means no immediate subset
                    // reaches the threshold (the error is monotone, so
                    // immediate subsets suffice — module docs)
                    let minimal = node.attrs.iter().all(|b| {
                        let sub = Cfd::fd(node.attrs.without(b), a);
                        if approx {
                            !cfd_model::measure::measure(rel, &sub).meets(theta)
                        } else {
                            !cfd_model::satisfy::satisfies(rel, &sub)
                        }
                    });
                    if minimal {
                        stats.emitted += 1;
                        out.push(Cfd::fd(node.attrs, a));
                        // a (super)key determines every attribute exactly
                        meas.push(RuleMeasure::exact(n));
                    }
                }
            }
            let mut kept: Vec<Node> = Vec::with_capacity(level.len());
            let level_size = level.len();
            for (i, node) in level.into_iter().enumerate() {
                if !node.cplus.is_empty() && !keyed[i] {
                    kept.push(node);
                }
            }
            let level_now = kept;
            stats.pruned += (level_size - level_now.len()) as u64;

            if level_now.len() < 2 || ell >= arity || self.max_lhs.is_some_and(|m| ell > m) {
                break;
            }

            // generate next level by prefix join, sharded across the
            // configured workers (run order keeps it deterministic)
            let index: FxHashMap<AttrSet, usize> = level_now
                .iter()
                .enumerate()
                .map(|(i, nd)| (nd.attrs, i))
                .collect();
            let mut order: Vec<usize> = (0..level_now.len()).collect();
            order.sort_unstable_by_key(|&i| level_now[i].attrs.iter().collect::<Vec<_>>());
            let mut runs: Vec<(usize, usize)> = Vec::new();
            let mut run_start = 0;
            while run_start < order.len() {
                let prefix: Vec<usize> = level_now[order[run_start]]
                    .attrs
                    .iter()
                    .take(ell - 1)
                    .collect();
                let mut run_end = run_start + 1;
                while run_end < order.len()
                    && level_now[order[run_end]]
                        .attrs
                        .iter()
                        .take(ell - 1)
                        .eq(prefix.iter().copied())
                {
                    run_end += 1;
                }
                runs.push((run_start, run_end));
                run_start = run_end;
            }
            let last_level = ell + 1 >= arity || self.max_lhs.is_some_and(|m| ell + 1 > m);

            let expand = ExpandCtx {
                rel,
                full,
                level: &level_now,
                index: &index,
                order: &order,
                store: &*store,
                last_level,
            };
            // worker w owns runs w, w+T, …; batches merge in run
            // order, so the level comes out byte-identical to the
            // serial walk (the shared shard_runs harness)
            let produced: Vec<Generated> = shard_runs(
                &runs,
                self.threads,
                ctrl,
                stats,
                || RefineScratch::for_relation(rel),
                |run, scratch, local, out| expand.run_pairs(*run, scratch, local, |g| out.push(g)),
            )?;
            let mut next: Vec<Node> = Vec::new();
            for g in produced {
                if let Some(part) = g.partition {
                    store.insert_pinned(g.node.attrs, ell as u32 + 1, part);
                }
                next.push(g.node);
            }
            if next.is_empty() {
                break;
            }
            // slide the level window (see the module docs)
            if ell >= 1 {
                store.retire_level(ell as u32 - 1);
            }
            if approx {
                store.unpin_level(ell as u32);
            } else {
                store.retire_level(ell as u32);
            }
            prev_classes = level_now
                .into_iter()
                .map(|nd| (nd.attrs, nd.n_classes))
                .collect();
            level = next;
            ell += 1;
        }
        // report this run's traffic only: a shared store keeps
        // cumulative counters across runs
        let after = store.stats();
        stats.store = cfd_partition::StoreStats {
            hits: after.hits - stats_at_entry.hits,
            misses: after.misses - stats_at_entry.misses,
            evictions: after.evictions - stats_at_entry.evictions,
            ..after
        }
        .into();

        Ok(CanonicalCover::from_measured(
            out.into_iter().zip(meas).collect(),
        ))
    }
}

/// Everything an expansion worker needs, shared read-only.
struct ExpandCtx<'a> {
    rel: &'a Relation,
    full: AttrSet,
    level: &'a [Node],
    index: &'a FxHashMap<AttrSet, usize>,
    order: &'a [usize],
    store: &'a PartitionStore<AttrSet>,
    last_level: bool,
}

impl ExpandCtx<'_> {
    /// Expands one prefix run: every join pair inside it, in order.
    fn run_pairs(
        &self,
        (run_start, run_end): (usize, usize),
        scratch: &mut RefineScratch,
        stats: &mut SearchStats,
        mut emit: impl FnMut(Generated),
    ) {
        let mut buf = StrippedPartition::default();
        for xi in run_start..run_end {
            for yi in xi + 1..run_end {
                let (n1, n2) = (&self.level[self.order[xi]], &self.level[self.order[yi]]);
                let z = n1.attrs.union(n2.attrs);
                if z.len() != self.level[self.order[xi]].attrs.len() + 1 {
                    continue;
                }
                if !z.iter().all(|b| self.index.contains_key(&z.without(b))) {
                    continue;
                }
                let mut cplus = self.full;
                for b in z.iter() {
                    cplus = cplus.intersection(self.level[self.index[&z.without(b)]].cplus);
                }
                if cplus.is_empty() {
                    continue;
                }
                // refine the finer parent by the other's trailing
                // attribute (fewer splits to perform)
                let extra = n2.attrs.max().expect("nonempty");
                let base = if n1.n_classes >= n2.n_classes { n1 } else { n2 };
                let extra_attr = if base.attrs == n1.attrs {
                    extra
                } else {
                    n1.attrs.max().expect("nonempty")
                };
                let base_part = self
                    .store
                    .peek(&base.attrs)
                    .expect("current level is pinned in the store");
                if self.last_level {
                    let (n_classes, _) =
                        base_part.refine_counts(self.rel, None, extra_attr, PVal::Var, scratch);
                    emit(Generated {
                        node: Node {
                            attrs: z,
                            n_classes,
                            cplus,
                        },
                        partition: None,
                    });
                } else {
                    base_part.refine_into(self.rel, None, extra_attr, PVal::Var, scratch, &mut buf);
                    stats.partitions += 1;
                    emit(Generated {
                        node: Node {
                            attrs: z,
                            n_classes: buf.n_classes(),
                            cplus,
                        },
                        partition: Some(buf.take_compact()),
                    });
                }
            }
        }
    }
}

/// The keep count of the parent attribute set's partition w.r.t. RHS
/// `a` — served from the store, rebuilt from the relation on a miss.
fn parent_keep(
    store: &mut PartitionStore<AttrSet>,
    rel: &Relation,
    idx: &RelationIndex,
    parent: AttrSet,
    a: usize,
    scratch: &mut RefineScratch,
    stats: &mut SearchStats,
) -> usize {
    if let Some(part) = store.get(&parent) {
        return part.keep_count(rel, a, scratch);
    }
    let rebuilt =
        StrippedPartition::of_pattern(rel, idx, parent.iter().map(|b| (b, PVal::Var)), scratch);
    stats.partitions += 1;
    let keep = rebuilt.keep_count(rel, a, scratch);
    store.insert_pinned(parent, parent.len() as u32, rebuilt);
    store.unpin(&parent);
    keep
}
#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::cust_relation;
    use cfd_model::cfd::parse_cfd;
    use cfd_model::satisfy::satisfies;

    #[test]
    fn finds_paper_fds_on_cust() {
        let r = cust_relation();
        let cover = Tane::new().discover(&r);
        for txt in [
            "([CC, AC] -> CT, (_, _ || _))",         // f1
            "([CC, AC, PN] -> STR, (_, _, _ || _))", // f2
        ] {
            let c = parse_cfd(&r, txt).unwrap();
            assert!(cover.contains(&c), "{txt} missing:\n{}", cover.display(&r));
        }
        // every output holds and is attribute-minimal
        for c in cover.iter() {
            assert!(c.is_plain_fd());
            assert!(satisfies(&r, c), "{}", c.display(&r));
            for b in c.lhs_attrs().iter() {
                let red = Cfd::fd(c.lhs_attrs().without(b), c.rhs_attr());
                assert!(!satisfies(&r, &red), "reducible: {}", c.display(&r));
            }
        }
    }

    #[test]
    fn key_pruning_handles_unique_columns() {
        use cfd_model::relation::relation_from_rows;
        use cfd_model::schema::Schema;
        let schema = Schema::new(["id", "x", "y"]).unwrap();
        let r = relation_from_rows(
            schema,
            &[
                vec!["1", "a", "p"],
                vec!["2", "a", "q"],
                vec!["3", "b", "p"],
                vec!["4", "b", "q"],
            ],
        )
        .unwrap();
        let cover = Tane::new().discover(&r);
        // id is a key: id → x and id → y are minimal
        assert!(cover.contains(&Cfd::fd(AttrSet::singleton(0), 1)));
        assert!(cover.contains(&Cfd::fd(AttrSet::singleton(0), 2)));
        // [x,y] is also a key: [x,y] → id
        assert!(cover.contains(&Cfd::fd(AttrSet::from_iter([1, 2]), 0)));
        assert_eq!(cover.len(), 3, "{}", cover.display(&r));
    }

    #[test]
    fn constant_columns_do_not_emit_empty_lhs_fds() {
        use cfd_model::relation::relation_from_rows;
        use cfd_model::schema::Schema;
        let schema = Schema::new(["A", "B"]).unwrap();
        let r =
            relation_from_rows(schema, &[vec!["x", "k"], vec!["y", "k"], vec!["z", "k"]]).unwrap();
        let cover = Tane::new().discover(&r);
        // B is constant: A → B would not be minimal (∅ → B holds), and
        // ∅ → B is excluded by convention
        assert!(cover.is_empty(), "{}", cover.display(&r));
    }

    #[test]
    fn max_lhs_caps() {
        let r = cust_relation();
        let capped = Tane::new().max_lhs(1).discover(&r);
        assert!(capped.iter().all(|c| c.lhs_attrs().len() <= 1));
    }

    #[test]
    fn approximate_discovery_admits_noisy_fds() {
        use cfd_model::measure::measure;
        let r = cust_relation();
        // AC → CT is spoiled only by the 131 → {EDI, EDI, UN} class:
        // keep 7 of 8 tuples, confidence 0.875
        let fd = parse_cfd(&r, "(AC -> CT, (_ || _))").unwrap();
        let exact = Tane::new().discover(&r);
        assert!(!exact.contains(&fd));
        let approx = Tane::new().min_confidence(0.875).discover(&r);
        assert!(approx.contains(&fd), "cover:\n{}", approx.display(&r));
        assert!(!Tane::new().min_confidence(0.9).discover(&r).contains(&fd));
        // soundness: every emitted FD clears the threshold, and is
        // minimal — no immediate subset clears it too
        for theta in [0.8, 0.875, 0.95] {
            let cover = Tane::new().min_confidence(theta).discover(&r);
            for c in cover.iter() {
                let m = measure(&r, c);
                assert!(m.meets(theta), "{} at θ={theta}", c.display(&r));
                for b in c.lhs_attrs().iter() {
                    let sub = Cfd::fd(c.lhs_attrs().without(b), c.rhs_attr());
                    assert!(
                        !measure(&r, &sub).meets(theta),
                        "{} is reducible at θ={theta}",
                        c.display(&r)
                    );
                }
            }
        }
        // θ = 1.0 is bit-for-bit the exact cover
        assert_eq!(
            Tane::new().min_confidence(1.0).discover(&r).cfds(),
            exact.cfds()
        );
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;
    use cfd_model::cfd::parse_cfd;
    use cfd_model::relation::relation_from_rows;
    use cfd_model::schema::Schema;

    #[test]
    fn approx_completeness_probe() {
        // A: 9×x, 1×y (∅→A meets θ=0.9); B: x-rows 8×p 1×q, y-row q.
        // A→B keep = 8+1 = 9 ≥ 0.9·10 → meets θ; ∅→B keep = 8 < 9 → fails.
        // So (A -> B) is a minimal approximate FD at θ=0.9.
        let schema = Schema::new(["A", "B"]).unwrap();
        let mut rows: Vec<Vec<&str>> = vec![];
        for i in 0..9 {
            rows.push(vec!["x", if i < 8 { "p" } else { "q" }]);
        }
        rows.push(vec!["y", "q"]);
        let r = relation_from_rows(schema, &rows).unwrap();
        let fd = parse_cfd(&r, "(A -> B, (_ || _))").unwrap();
        let m = cfd_model::measure::measure(&r, &fd);
        assert!(m.meets(0.9), "premise: A->B meets 0.9 ({m:?})");
        let cover = Tane::new().min_confidence(0.9).discover(&r);
        assert!(
            cover.contains(&fd),
            "A->B missing from θ=0.9 cover:\n{}",
            cover.display(&r)
        );
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use cfd_datagen::cust::cust_relation;

    #[test]
    fn threads_and_cache_do_not_change_the_cover() {
        let r = cust_relation();
        let serial = Tane::new().discover(&r);
        for t in [2, 4] {
            assert_eq!(serial.cfds(), Tane::new().threads(t).discover(&r).cfds());
        }
        for theta in [0.8, 0.875, 1.0] {
            let cached = Tane::new().min_confidence(theta).discover(&r);
            let uncached = Tane::new()
                .min_confidence(theta)
                .cache_budget(0)
                .discover(&r);
            assert_eq!(cached.cfds(), uncached.cfds(), "θ={theta}");
            let sharded = Tane::new().min_confidence(theta).threads(4).discover(&r);
            assert_eq!(cached.cfds(), sharded.cfds(), "θ={theta} sharded");
        }
    }

    #[test]
    fn emission_measures_match_the_reference() {
        use cfd_model::measure::measure;
        let r = cust_relation();
        for theta in [0.875, 1.0] {
            let (cover, measures) = Tane::new()
                .min_confidence(theta)
                .run_measured(&r, &Control::default(), &mut SearchStats::default())
                .unwrap();
            assert_eq!(cover.len(), measures.len());
            for (cfd, m) in cover.iter().zip(&measures) {
                assert_eq!(*m, measure(&r, cfd), "θ={theta}: {}", cfd.display(&r));
            }
        }
    }
}
