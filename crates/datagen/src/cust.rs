//! The `cust` relation of Fig. 1 — the paper's running example.

use cfd_model::relation::{relation_from_rows, Relation};
use cfd_model::schema::Schema;

/// The schema of the `cust` relation: country code, area code, phone
/// number, name, street, city, zip.
pub fn cust_schema() -> Schema {
    Schema::new(["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"]).expect("static schema is valid")
}

/// The instance `r0` of Fig. 1 (tuples `t1 … t8`).
///
/// Every claim the paper makes about `r0` (Examples 1–9) is validated
/// against this instance in the test suites of the workspace.
pub fn cust_relation() -> Relation {
    relation_from_rows(
        cust_schema(),
        &[
            vec!["01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"],
            vec!["01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"],
            vec!["01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"],
            vec!["01", "908", "2222222", "Jim", "Elm Str.", "MH", "07974"],
            vec!["44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"],
            vec!["44", "131", "2222222", "Ian", "High St.", "EDI", "EH4 1DT"],
            vec!["44", "908", "2222222", "Ian", "Port PI", "MH", "W1B 1JH"],
            vec!["01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"],
        ],
    )
    .expect("static instance is valid")
}

/// A dirtied copy of `r0` for the cleaning demo: `t3`'s city is corrupted
/// to `MH` (breaking φ3-style rules) and `t6`'s street to `Low St.`
/// (breaking the UK zip → street rule φ0). Built with
/// [`Relation::with_replaced_values`], so it shares `r0`'s dictionaries
/// and rules discovered on the clean instance evaluate on it directly.
pub fn dirty_cust_relation() -> Relation {
    let clean = cust_relation();
    let ct = 5;
    let str_a = 4;
    clean.with_replaced_values(&[(2, ct, "MH"), (5, str_a, "Low St.")])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_model::cfd::parse_cfd;
    use cfd_model::satisfy::satisfies;

    #[test]
    fn shape() {
        let r = cust_relation();
        assert_eq!(r.n_rows(), 8);
        assert_eq!(r.arity(), 7);
        assert_eq!(r.value(0, 3), "Mike");
    }

    #[test]
    fn clean_satisfies_paper_rules_dirty_does_not() {
        let clean = cust_relation();
        let dirty = dirty_cust_relation();
        let phi0 = "([CC, ZIP] -> STR, (44, _ || _))";
        let f1 = "([CC, AC] -> CT, (_, _ || _))";
        for txt in [phi0, f1] {
            let c = parse_cfd(&clean, txt).unwrap();
            assert!(satisfies(&clean, &c), "{txt} must hold on clean r0");
        }
        let phi0_dirty = parse_cfd(&dirty, phi0).unwrap();
        assert!(!satisfies(&dirty, &phi0_dirty), "t6 corruption breaks φ0");
    }
}
