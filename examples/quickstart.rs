//! Quickstart: discover the CFDs of the paper's running example.
//!
//! Builds the `cust` relation of Fig. 1, runs all three discovery
//! algorithms, and prints the canonical cover in the paper's syntax.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cfd_suite::datagen::cust::cust_relation;
use cfd_suite::prelude::*;

fn main() {
    let rel = cust_relation();
    println!("The cust relation of Fig. 1 ({} tuples):", rel.n_rows());
    println!("{rel:?}");

    let k = 2; // support threshold: patterns must match ≥ 2 tuples

    // CFDMiner: constant CFDs only (object-identification rules)
    let constants = CfdMiner::new(k).discover(&rel);
    println!(
        "CFDMiner — {} minimal {k}-frequent constant CFDs:",
        constants.len()
    );
    print!("{}", constants.display(&rel));

    // FastCFD: the full canonical cover (constant + variable CFDs)
    let cover = FastCfd::new(k).discover(&rel);
    let (n_const, n_var) = cover.counts();
    println!("\nFastCFD — canonical cover ({n_const} constant + {n_var} variable):");
    print!("{}", cover.display(&rel));

    // CTANE produces the same cover by a level-wise search
    let ctane = Ctane::new(k).discover(&rel);
    assert_eq!(ctane.cfds(), cover.cfds(), "CTANE and FastCFD agree");
    println!("\nCTANE agrees with FastCFD on all {} rules.", cover.len());

    // every discovered rule really holds
    assert!(cover.iter().all(|c| satisfies(&rel, c)));
    // and CFDMiner is exactly the constant fragment
    assert_eq!(constants.cfds(), cover.constant_cover().cfds());
    println!("All rules verified against the instance.");
}
