//! Property tests for the stable rule wire-format: randomized
//! [`CanonicalCover`]s must survive `to_text` → `parse_cfd` → identical
//! cover, including constants containing `,`, `=`, `_`, `|`, quotes,
//! backslashes and leading/trailing/interior whitespace — exactly the
//! characters the quoting rules exist for.

use cfd_model::attrset::AttrSet;
use cfd_model::cfd::{parse_cfd, Cfd};
use cfd_model::cover::CanonicalCover;
use cfd_model::measure::{display_annotated, split_annotation, RuleMeasure};
use cfd_model::pattern::{PVal, Pattern};
use cfd_model::relation::{relation_from_rows, Relation};
use cfd_model::schema::Schema;
use proptest::prelude::*;

/// The adversarial value alphabet: every class of character the wire
/// format must escape, plus plain values that must stay bare.
const VALUES: &[&str] = &[
    "plain",
    "01",
    "908",
    "_",
    "__",
    "a_b",
    "",
    " ",
    "a,b",
    ",",
    "k = v",
    "=",
    " lead",
    "trail ",
    "mid dle",
    "pipe|pipe",
    "||",
    "par(en",
    "the)sis",
    "()",
    "qu\"ote",
    "\"\"",
    "back\\slash",
    "\\n",
    "line\nbreak",
    "cr\rhere",
    "tab\there",
    "ünïcode ✓",
    "-> arrow",
    "[brackets]",
];

/// A 4-attribute relation whose dictionaries contain the whole alphabet
/// (every value occurs in every column, so any `(attr, value)` pair is a
/// legal pattern constant).
fn nasty_relation() -> Relation {
    let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
    let rows: Vec<Vec<&str>> = (0..VALUES.len())
        .map(|i| (0..4).map(|j| VALUES[(i + j * 7) % VALUES.len()]).collect())
        .chain((0..VALUES.len()).map(|i| (0..4).map(|_| VALUES[i]).collect()))
        .collect();
    relation_from_rows(schema, &rows).unwrap()
}

/// Strategy: one random CFD over `rel` — random LHS subset (possibly
/// empty), each LHS slot a wildcard or a random constant, RHS a
/// wildcard or constant.
fn arb_cfd() -> impl Strategy<Value = Cfd> {
    let n_vals = VALUES.len() as u32;
    (
        0u32..16,                                         // LHS attribute-subset mask over {A,B,C,D}
        proptest::collection::vec(0u32..(n_vals + 1), 4), // per-slot value (n_vals = wildcard)
        0u32..4,                                          // RHS attribute
        0u32..(n_vals + 1),                               // RHS value (n_vals = wildcard)
    )
        .prop_map(|(mask, slot_vals, rhs_pick, rhs_val)| {
            let rel = nasty_relation();
            // keep the CFD non-trivial: drop the RHS attribute from the LHS
            let rhs = rhs_pick as usize;
            let lhs_attrs: Vec<usize> = (0..4)
                .filter(|a| mask & (1 << a) != 0 && *a != rhs)
                .collect();
            let code_of = |a: usize, pick: u32| -> PVal {
                if pick as usize == VALUES.len() {
                    PVal::Var
                } else {
                    PVal::Const(
                        rel.column(a)
                            .dict()
                            .code(VALUES[pick as usize])
                            .expect("alphabet value occurs in every column"),
                    )
                }
            };
            let lhs = Pattern::from_pairs(lhs_attrs.iter().map(|&a| (a, code_of(a, slot_vals[a]))));
            Cfd::new(lhs, rhs, code_of(rhs, rhs_val))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// `cover == from_text(to_text(cover))` for randomized covers over
    /// the adversarial alphabet.
    #[test]
    fn cover_round_trips_through_wire_format(
        cfds in proptest::collection::vec(arb_cfd(), 1..12)
    ) {
        let rel = nasty_relation();
        let cover = CanonicalCover::from_cfds(cfds);
        let text = cover.to_text(&rel);
        let back = CanonicalCover::from_text(&rel, &text)
            .expect("wire-format output must parse");
        prop_assert_eq!(&back, &cover, "wire text:\n{}", text);
    }

    /// Each individual rule's display parses back to the identical rule
    /// (a sharper statement than the cover-level property: no rescue by
    /// normalization or dedup).
    #[test]
    fn single_rule_round_trips_exactly(cfd in arb_cfd()) {
        let rel = nasty_relation();
        let text = cfd.display(&rel);
        let back = parse_cfd(&rel, &text).expect("display output must parse");
        prop_assert_eq!(back, cfd, "wire text: {}", text);
    }

    /// Rules carrying support/confidence annotations round-trip over the
    /// same adversarial alphabet: the quote-aware splitter recovers the
    /// exact rule and the exact measure, including constants that *look*
    /// like annotations.
    #[test]
    fn annotated_rule_round_trips_exactly(
        cfd in arb_cfd(),
        support in 0usize..5000,
        bad in 0usize..5000,
    ) {
        let rel = nasty_relation();
        let m = RuleMeasure { support, violations: bad.min(support) };
        let line = display_annotated(&rel, &cfd, &m);
        let (rule_text, parsed) = split_annotation(&line).expect("annotated output must split");
        prop_assert_eq!(parsed, Some(m), "line: {}", &line);
        let back = parse_cfd(&rel, rule_text).expect("rule half must parse");
        prop_assert_eq!(back, cfd, "line: {}", &line);
    }

    /// Whole annotated covers round-trip: cover, per-rule measures, and
    /// the plain parser's view all agree.
    #[test]
    fn annotated_cover_round_trips(
        cfds in proptest::collection::vec(arb_cfd(), 1..10),
        seeds in proptest::collection::vec((0usize..5000, 0usize..5000), 10),
    ) {
        let rel = nasty_relation();
        let cover = CanonicalCover::from_cfds(cfds);
        let measures: Vec<RuleMeasure> = cover
            .iter()
            .zip(&seeds)
            .map(|(_, &(s, v))| RuleMeasure { support: s, violations: v.min(s) })
            .collect();
        let text = cover.to_annotated_text(&rel, &measures);
        let (back, back_measures) = CanonicalCover::from_annotated_text(&rel, &text)
            .expect("annotated wire-format output must parse");
        prop_assert_eq!(&back, &cover, "wire text:\n{}", &text);
        let back_measures: Vec<RuleMeasure> =
            back_measures.into_iter().map(Option::unwrap).collect();
        prop_assert_eq!(&back_measures, &measures, "wire text:\n{}", &text);
        // the measure-blind parser reads the same cover
        let plain = CanonicalCover::from_text(&rel, &text).expect("plain parse");
        prop_assert_eq!(&plain, &cover);
    }
}

#[test]
fn from_text_reports_offending_line() {
    let rel = nasty_relation();
    let err = CanonicalCover::from_text(&rel, "# comment\n\n([A] -> B, (plain || 01))\nnonsense\n")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 4"), "{msg}");
}

#[test]
fn empty_lhs_round_trips() {
    let rel = nasty_relation();
    let cfd = Cfd::new(Pattern::from_pairs([]), 2, PVal::Var);
    assert_eq!(cfd.lhs_attrs(), AttrSet::EMPTY);
    let text = cfd.display(&rel);
    assert_eq!(parse_cfd(&rel, &text).unwrap(), cfd);
}
