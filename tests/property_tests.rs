//! Property-based tests (proptest): the discovery algorithms are checked
//! on arbitrary small relations — soundness, minimality, completeness
//! against the brute-force oracle, and pairwise agreement.

use cfd_suite::core::{audit_cover, is_minimal};
use cfd_suite::prelude::*;
use proptest::prelude::*;

/// An arbitrary relation: 1–16 rows, 2–4 attributes, domain ≤ 3 per
/// attribute (kept tiny so the brute-force oracle stays cheap).
fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..=4, 1usize..=16)
        .prop_flat_map(|(arity, rows)| {
            proptest::collection::vec(proptest::collection::vec(0u32..3, arity), rows)
        })
        .prop_map(|rows| {
            let arity = rows[0].len();
            let schema = Schema::new((0..arity).map(|i| format!("A{i}"))).unwrap();
            let mut b = RelationBuilder::new(schema);
            for row in &rows {
                b.push_coded_row(row).unwrap();
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fastcfd_outputs_hold_and_are_minimal(rel in arb_relation(), k in 1usize..=3) {
        let cover = FastCfd::new(k).discover(&rel);
        let problems = audit_cover(&rel, cover.iter(), k);
        prop_assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn ctane_equals_fastcfd(rel in arb_relation(), k in 1usize..=3) {
        let ctane = Ctane::new(k).discover(&rel);
        let fast = FastCfd::new(k).discover(&rel);
        prop_assert_eq!(ctane.cfds(), fast.cfds());
    }

    #[test]
    fn naive_equals_fastcfd(rel in arb_relation(), k in 1usize..=3) {
        let naive = FastCfd::naive(k).discover(&rel);
        let fast = FastCfd::new(k).discover(&rel);
        prop_assert_eq!(naive.cfds(), fast.cfds());
    }

    #[test]
    fn complete_against_oracle(rel in arb_relation(), k in 1usize..=2) {
        let fast = FastCfd::new(k).discover(&rel);
        let want = BruteForce::new(k).discover(&rel);
        prop_assert_eq!(fast.cfds().to_vec(), want.cfds().to_vec());
    }

    #[test]
    fn cfdminer_is_the_constant_fragment(rel in arb_relation(), k in 1usize..=3) {
        let miner = CfdMiner::new(k).discover(&rel);
        let fast = FastCfd::new(k).discover(&rel);
        prop_assert_eq!(miner.cfds().to_vec(), fast.constant_cover().cfds().to_vec());
        prop_assert!(miner.iter().all(|c| c.is_constant()));
    }

    #[test]
    fn discovered_rules_transfer_to_satisfying_extensions(
        rel in arb_relation(), k in 1usize..=2
    ) {
        // duplicating rows preserves every discovered CFD (satisfaction is
        // closed under tuple duplication) and can only increase support
        let cover = FastCfd::new(k).discover(&rel);
        let rows: Vec<u32> = rel.tuples().chain(rel.tuples()).collect();
        let doubled = rel.restrict(&rows);
        for cfd in cover.iter() {
            prop_assert!(satisfies(&doubled, cfd), "{}", cfd.display(&rel));
            prop_assert!(support(&doubled, cfd) >= 2 * k.min(1));
        }
    }

    #[test]
    fn minimality_oracle_consistent_with_membership(
        rel in arb_relation()
    ) {
        // every CFD in the cover passes is_minimal; conversely the cover
        // is exactly the minimal set (spot-checked via the oracle above)
        let cover = FastCfd::new(1).discover(&rel);
        for cfd in cover.iter() {
            prop_assert!(is_minimal(&rel, cfd, 1));
        }
    }

    #[test]
    fn violations_iff_not_satisfied(rel in arb_relation()) {
        // violations() and satisfies() agree for arbitrary single rules
        let cover = FastCfd::new(1).discover(&rel);
        for cfd in cover.iter().take(10) {
            prop_assert!(violations(&rel, cfd).is_empty());
        }
    }
}
