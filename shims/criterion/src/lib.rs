//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset of the API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`Throughput`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple warm-up + sampling timing
//! loop instead of criterion's statistics machinery. Results are printed
//! one line per benchmark:
//!
//! ```text
//! group/function/param  time: 1.2345 ms/iter  (12 samples)  8.1e4 elem/s
//! ```
//!
//! The numbers are honest wall-clock means, good enough to track the
//! perf trajectory PR over PR; swap the real criterion back in when the
//! build environment gains registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque sink preventing the optimizer from deleting a benchmark body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher<'a> {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    result_ns: &'a mut f64,
    sampled: &'a mut usize,
}

impl Bencher<'_> {
    /// Times `f`, storing the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up: run until the warm-up budget is spent (at least once)
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // measurement: up to `samples` timed runs within the time budget
        let mut total = Duration::ZERO;
        let mut runs = 0usize;
        while runs < self.samples && (runs == 0 || total < self.measurement_time) {
            let t0 = Instant::now();
            black_box(f());
            total += t0.elapsed();
            runs += 1;
        }
        *self.result_ns = total.as_nanos() as f64 / runs as f64;
        *self.sampled = runs;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total sampling budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput, reported as
    /// elements (or bytes) per second next to the timing.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut ns = f64::NAN;
        let mut sampled = 0usize;
        let mut b = Bencher {
            samples: self.samples,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            result_ns: &mut ns,
            sampled: &mut sampled,
        };
        f(&mut b, input);
        self.report(&id.id, ns, sampled);
        self
    }

    /// Runs one benchmark without a separate input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.bench_with_input(id, &(), |b, _: &()| f(b))
    }

    fn report(&self, id: &str, ns: f64, sampled: usize) {
        let time = if ns >= 1e9 {
            format!("{:.4} s/iter", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.4} ms/iter", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.4} us/iter", ns / 1e3)
        } else {
            format!("{ns:.1} ns/iter")
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3e} elem/s", n as f64 / (ns / 1e9))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.3e} B/s", n as f64 / (ns / 1e9))
            }
            None => String::new(),
        };
        println!(
            "{}/{id}  time: {time}  ({sampled} samples){rate}",
            self.name
        );
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (a no-op in the stand-in; the
    /// bench binary still accepts and ignores cargo's `--bench` flag).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function(BenchmarkId::from("bench"), &mut f);
        g.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ns = f64::NAN;
        let mut sampled = 0;
        let mut b = Bencher {
            samples: 3,
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
            result_ns: &mut ns,
            sampled: &mut sampled,
        };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(ns > 0.0);
        assert!(sampled >= 1);
        g.finish();
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .throughput(Throughput::Elements(10));
        let input = vec![1u64, 2, 3];
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("sum", 3), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>());
            ran = true;
        });
        assert!(ran);
        g.finish();
    }
}
