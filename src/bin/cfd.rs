//! `cfd` — command-line CFD discovery and data validation.
//!
//! ```text
//! cfd discover <data.csv> [--k N] [--algo fastcfd|ctane|naive|cfdminer|tane|fastfd]
//!              [--max-lhs N] [--threads N] [--constants-only] [--tableau]
//! cfd check    <data.csv> <rules.txt> [--limit N] [--threads N]
//! cfd repair   <data.csv> <rules.txt> <out.csv>
//! cfd stats    <data.csv>
//! cfd watch    <initial.csv> <rules.txt> [--shards N]
//! ```
//!
//! `--threads N` parallelizes `discover` for `--algo fastcfd` (FindCover
//! is embarrassingly parallel across RHS attributes; the other
//! algorithms are single-threaded and say so) and `check` (rules are
//! sharded across workers by the validation kernel).
//!
//! `discover` prints one rule per line in the paper's syntax — the same
//! syntax `check` parses back, so the two commands compose:
//!
//! ```sh
//! cfd discover clean.csv --k 20 > rules.txt
//! cfd check dirty.csv rules.txt
//! ```
//!
//! `watch` keeps checking as the data changes: it warms the incremental
//! engine on the initial CSV, then reads a stream of operations from
//! stdin — one CSV row (optionally prefixed `+`) per insert, `-<id>`
//! per delete, an empty line (or `.`) to apply the pending batch — and
//! prints the violation deltas (`RAISED` / `CLEARED` lines) plus
//! per-rule statistics instead of rescanning:
//!
//! ```sh
//! cfd discover clean.csv --k 20 > rules.txt
//! tail -f updates.log | cfd watch clean.csv rules.txt --shards 4
//! ```

use cfd_suite::core::{CfdMiner, Ctane, FastCfd};
use cfd_suite::fd::{FastFd, Tane};
use cfd_suite::model::csv::relation_from_csv_path;
use cfd_suite::model::tableau::group_into_tableaux;
use cfd_suite::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cfd discover <data.csv> [--k N] [--algo fastcfd|ctane|naive|cfdminer|tane|fastfd]\n\
         \x20              [--max-lhs N] [--threads N] [--constants-only] [--tableau]\n  \
         cfd check <data.csv> <rules.txt> [--limit N] [--threads N]\n  \
         cfd repair <data.csv> <rules.txt> <out.csv>\n  \
         cfd stats <data.csv>\n  \
         cfd watch <initial.csv> <rules.txt> [--shards N]\n\
         (--threads parallelizes discovery for --algo fastcfd only, and check)"
    );
    ExitCode::from(2)
}

struct Args {
    positional: Vec<String>,
    k: usize,
    algo: String,
    max_lhs: Option<usize>,
    threads: usize,
    constants_only: bool,
    tableau: bool,
    limit: usize,
    shards: usize,
}

fn parse_args(argv: &[String]) -> Option<Args> {
    let mut a = Args {
        positional: Vec::new(),
        k: 2,
        algo: "fastcfd".into(),
        max_lhs: None,
        threads: 1,
        constants_only: false,
        tableau: false,
        limit: 20,
        shards: 1,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--k" => a.k = it.next()?.parse().ok()?,
            "--algo" => a.algo = it.next()?.clone(),
            "--max-lhs" => a.max_lhs = Some(it.next()?.parse().ok()?),
            "--threads" => a.threads = it.next()?.parse().ok()?,
            "--limit" => a.limit = it.next()?.parse().ok()?,
            "--shards" => a.shards = it.next()?.parse().ok()?,
            "--constants-only" => a.constants_only = true,
            "--tableau" => a.tableau = true,
            other if !other.starts_with('-') => a.positional.push(other.to_string()),
            _ => return None,
        }
    }
    Some(a)
}

fn discover(a: &Args) -> Result<ExitCode> {
    let rel = relation_from_csv_path(&a.positional[0])?;
    eprintln!(
        "# {}: {} tuples x {} attributes, k = {}",
        a.positional[0],
        rel.n_rows(),
        rel.arity(),
        a.k
    );
    let t0 = std::time::Instant::now();
    if a.threads > 1 && a.algo != "fastcfd" {
        eprintln!(
            "# warning: --threads {} is ignored by --algo {} — only fastcfd \
             parallelizes discovery (FindCover shards across RHS attributes); \
             running single-threaded",
            a.threads, a.algo
        );
    }
    let cover = match a.algo.as_str() {
        "fastcfd" => FastCfd::new(a.k).threads(a.threads).discover(&rel),
        "naive" => FastCfd::naive(a.k).discover(&rel),
        "ctane" => match a.max_lhs {
            Some(m) => Ctane::new(a.k).max_lhs(m).discover(&rel),
            None => Ctane::new(a.k).discover(&rel),
        },
        "cfdminer" => CfdMiner::new(a.k).discover(&rel),
        "tane" => Tane::new().discover(&rel),
        "fastfd" => FastFd::new().discover(&rel),
        other => {
            eprintln!("unknown algorithm {other:?}");
            return Ok(ExitCode::from(2));
        }
    };
    let cover = if a.constants_only {
        cover.constant_cover()
    } else {
        cover
    };
    let (nc, nv) = cover.counts();
    eprintln!(
        "# {} rules ({nc} constant, {nv} variable) in {:.2?}",
        cover.len(),
        t0.elapsed()
    );
    if a.tableau {
        for t in group_into_tableaux(&cover) {
            print!("{}", t.display(&rel));
        }
    } else {
        print!("{}", cover.display(&rel));
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses a rules file against `rel`'s dictionaries, warning about (and
/// skipping) lines whose constants do not occur in `rel`.
fn load_rules(rel: &Relation, path: &str) -> Result<Vec<(String, Cfd)>> {
    let rules_text = std::fs::read_to_string(path)?;
    let mut rules: Vec<(String, Cfd)> = Vec::new();
    for (no, line) in rules_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_cfd(rel, line) {
            Ok(cfd) => rules.push((line.to_string(), cfd)),
            Err(e) => eprintln!("# skipping line {}: {e}", no + 1),
        }
    }
    Ok(rules)
}

fn check(a: &Args) -> Result<ExitCode> {
    let rel = relation_from_csv_path(&a.positional[0])?;
    let rules = load_rules(&rel, &a.positional[1])?;
    eprintln!(
        "# checking {} rules against {} ({} threads)",
        rules.len(),
        a.positional[0],
        a.threads.max(1),
    );
    // one kernel pass over the relation for the whole cover: rules
    // sharing an LHS wildcard set share a grouping, and the sample cap
    // keeps per-rule output bounded while the counters stay exact
    let report = validate(
        &rel,
        rules.iter().map(|(_, cfd)| cfd),
        &ValidateOptions {
            threads: a.threads,
            limit: a.limit,
        },
    );
    for r in &report.rules {
        if r.satisfied() {
            continue;
        }
        let (text, _) = &rules[r.rule];
        println!("VIOLATED {text}");
        for v in &r.sample {
            match v {
                Violation::Single(t) => {
                    println!("  tuple {}: {:?}", t + 1, rel.tuple_values(*t))
                }
                Violation::Pair(t1, t2) => println!(
                    "  tuples {} and {}: {:?} vs {:?}",
                    t1 + 1,
                    t2 + 1,
                    rel.tuple_values(*t1),
                    rel.tuple_values(*t2)
                ),
            }
        }
        if r.violations > r.sample.len() {
            println!(
                "  ... {} more violations (raise --limit)",
                r.violations - r.sample.len()
            );
        }
    }
    if report.satisfied() {
        println!("OK: all rules hold");
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn repair(a: &Args) -> Result<ExitCode> {
    let rel = relation_from_csv_path(&a.positional[0])?;
    let rules: Vec<Cfd> = load_rules(&rel, &a.positional[1])?
        .into_iter()
        .map(|(_, cfd)| cfd)
        .collect();
    use cfd_suite::model::repair::apply_repairs;
    let before = detect_violations(&rel, &rules).len();
    let repairs = suggest_repairs_for_cover(&rel, &rules);
    let fixed = apply_repairs(&rel, &repairs);
    let after = detect_violations(&fixed, &rules).len();
    let mut out = std::io::BufWriter::new(std::fs::File::create(&a.positional[2])?);
    cfd_suite::model::csv::relation_to_csv(&fixed, &mut out)?;
    use std::io::Write as _;
    out.flush().map_err(cfd_suite::prelude::Error::from)?;
    eprintln!(
        "# {} cell edits applied; violations {before} -> {after}; wrote {}",
        repairs.len(),
        a.positional[2]
    );
    for r in repairs.iter().take(10) {
        eprintln!(
            "#   tuple {} {}: {:?} -> {:?}",
            r.tuple + 1,
            rel.schema().name(r.attr),
            rel.column(r.attr).dict().value(r.current),
            rel.column(r.attr).dict().value(r.suggested),
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Streaming watch loop: warm the incremental engine on the initial
/// CSV, then apply insert/delete batches from stdin and print violation
/// deltas. Protocol, one operation per line:
///
/// * `<v1>,<v2>,…` or `+<v1>,<v2>,…` — stage a tuple insert (use the
///   `+` prefix when the first field itself starts with `#` or `-`),
/// * `-<row id>` — stage a delete (ids are printed on insert and are
///   stable: the initial CSV occupies `0..n`),
/// * empty line or `.` — apply the staged batch (deletes first, then
///   inserts, so a row can be replaced in one flush) and print its
///   delta; a rejected half (bad width, dead id) aborts the whole
///   flush, discarding both halves,
/// * `#…` — comment, ignored,
/// * `?` — print per-rule statistics.
///
/// Unlike `check`, rule constants need not occur in the initial CSV:
/// they are interned into the dictionaries up front, so a monitoring
/// rule can precede the first tuple it matches. EOF applies any staged
/// batch and prints final statistics. Exit code 0 when the final live
/// instance satisfies every rule, 1 otherwise.
fn watch(a: &Args) -> Result<ExitCode> {
    use cfd_suite::model::cfd::parse_cfd_interning;
    use cfd_suite::prelude::StreamEngine;
    use std::io::BufRead;

    let mut rel = relation_from_csv_path(&a.positional[0])?;
    let rules_text = std::fs::read_to_string(&a.positional[1])?;
    let mut texts: Vec<String> = Vec::new();
    let mut cfds: Vec<Cfd> = Vec::new();
    for (no, line) in rules_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_cfd_interning(&mut rel, line) {
            Ok(cfd) => {
                texts.push(line.to_string());
                cfds.push(cfd);
            }
            Err(e) => eprintln!("# skipping line {}: {e}", no + 1),
        }
    }
    let (mut engine, warm) = StreamEngine::warm(&rel, cfds, a.shards);
    eprintln!(
        "# watching {} rules over {} ({} tuples, {} shards)",
        engine.rules().len(),
        a.positional[0],
        engine.n_live(),
        engine.n_shards(),
    );

    let print_delta = |engine: &StreamEngine, delta: &cfd_suite::prelude::BatchDelta| {
        for &(r, v) in &delta.raised {
            match v {
                Violation::Single(t) => {
                    let vals = engine.row_values(t).unwrap_or_default();
                    println!("RAISED {} tuple {t}: {vals:?}", texts[r]);
                }
                Violation::Pair(t1, t2) => {
                    let v2 = engine.row_values(t2).unwrap_or_default();
                    println!("RAISED {} tuples {t1} and {t2}: {v2:?}", texts[r]);
                }
            }
        }
        for &(r, v) in &delta.cleared {
            match v {
                Violation::Single(t) => println!("CLEARED {} tuple {t}", texts[r]),
                Violation::Pair(t1, t2) => {
                    println!("CLEARED {} tuples {t1} and {t2}", texts[r])
                }
            }
        }
    };
    let print_stats = |engine: &StreamEngine| {
        for s in engine.stats() {
            println!(
                "STATS rule {} matched={} violations={} confidence={:.4}  {}",
                s.rule, s.matched, s.violations, s.confidence, texts[s.rule]
            );
        }
        println!(
            "STATS live={} violations={}",
            engine.n_live(),
            engine.live_violations().len()
        );
    };
    print_delta(&engine, &warm);

    let mut inserts: Vec<Vec<String>> = Vec::new();
    let mut deletes: Vec<u32> = Vec::new();
    let stdin = std::io::stdin();
    // The flush is all-or-nothing at the operator level: both halves
    // are validated before either is applied, so one bad line cannot
    // leave the stream half-applied and silently diverged.
    let apply = |engine: &mut StreamEngine,
                 inserts: &mut Vec<Vec<String>>,
                 deletes: &mut Vec<u32>| {
        let arity = engine.schema().arity();
        let mut seen = std::collections::HashSet::new();
        let bad_delete = deletes
            .iter()
            .find(|&&id| !engine.is_live(id) || !seen.insert(id));
        if let Some(&id) = bad_delete {
            eprintln!(
                "# batch rejected (both halves discarded): row {id} is not live or staged twice"
            );
        } else if let Some(row) = inserts.iter().find(|r| r.len() != arity) {
            eprintln!(
                    "# batch rejected (both halves discarded): row has {} values, schema has arity {arity}",
                    row.len()
                );
        } else {
            if !deletes.is_empty() {
                match engine.delete_batch(deletes) {
                    Ok(delta) => print_delta(engine, &delta),
                    Err(e) => eprintln!("# delete batch rejected: {e}"),
                }
            }
            if !inserts.is_empty() {
                match engine.insert_batch(inserts) {
                    Ok((ids, delta)) => {
                        println!(
                            "APPLIED +{} rows {}..={}",
                            ids.len(),
                            ids[0],
                            ids[ids.len() - 1]
                        );
                        print_delta(engine, &delta);
                    }
                    Err(e) => eprintln!("# insert batch rejected: {e}"),
                }
            }
        }
        deletes.clear();
        inserts.clear();
    };
    for line in stdin.lock().lines() {
        let line = line.map_err(Error::from)?;
        let line = line.trim();
        match line {
            "" | "." => apply(&mut engine, &mut inserts, &mut deletes),
            "?" => print_stats(&engine),
            _ if line.starts_with('#') => {}
            _ => {
                if let Some(id) = line.strip_prefix('-') {
                    match id.trim().parse::<u32>() {
                        Ok(id) => deletes.push(id),
                        Err(_) => eprintln!("# bad delete (want -<row id>): {line:?}"),
                    }
                } else {
                    let row = line.strip_prefix('+').unwrap_or(line);
                    inserts.push(row.split(',').map(|v| v.trim().to_string()).collect());
                }
            }
        }
    }
    apply(&mut engine, &mut inserts, &mut deletes);
    print_stats(&engine);
    if engine.live_violations().is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn stats(a: &Args) -> Result<ExitCode> {
    let rel = relation_from_csv_path(&a.positional[0])?;
    println!("file:    {}", a.positional[0]);
    println!("tuples:  {}", rel.n_rows());
    println!("arity:   {}", rel.arity());
    println!("CF:      {:.4}", rel.correlation_factor());
    println!("columns:");
    for at in 0..rel.arity() {
        println!(
            "  {:<20} |dom| = {}",
            rel.schema().name(at),
            rel.column(at).domain_size()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let cmd = argv[0].clone();
    let Some(args) = parse_args(&argv[1..]) else {
        return usage();
    };
    let need = match cmd.as_str() {
        "discover" | "stats" => 1,
        "check" | "watch" => 2,
        "repair" => 3,
        _ => return usage(),
    };
    if args.positional.len() != need {
        return usage();
    }
    let run = match cmd.as_str() {
        "discover" => discover(&args),
        "check" => check(&args),
        "repair" => repair(&args),
        "stats" => stats(&args),
        "watch" => watch(&args),
        _ => unreachable!(),
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
