//! # cfd-stream
//!
//! Incremental violation detection for streaming tuple batches — the
//! serving half of the CFD story. Discovery (cfd-core) produces a
//! canonical cover offline; this crate compiles that cover into
//! per-rule incremental indexes and keeps the violation set of a *live*,
//! continuously changing instance current without ever rescanning it:
//!
//! * a **constant-RHS matcher** catches single-tuple violations the
//!   moment the tuple arrives,
//! * a **per-LHS-pattern group index** (key = codes on the wildcard
//!   attributes → ordered members) catches pair violations of the
//!   embedded FD and re-anchors groups when their witness is deleted,
//! * rules are **sharded across worker threads**, so a batch is encoded
//!   once and applied to all rule indexes in parallel,
//! * per-rule **support / violation / confidence counters** are
//!   queryable at any point, in O(#rules).
//!
//! [`StreamEngine::insert_batch`] / [`StreamEngine::delete_batch`]
//! return [`BatchDelta`]s — violations newly raised and newly cleared —
//! and the engine guarantees its live set always reconciles exactly with
//! a batch [`cfd_validate::detect_violations`] scan of the
//! materialized live instance.
//!
//! ```
//! use cfd_model::cfd::parse_cfd;
//! use cfd_model::csv::relation_from_csv_str;
//! use cfd_model::Violation;
//! use cfd_stream::StreamEngine;
//!
//! let warm = relation_from_csv_str("AC,CT\n908,MH\n131,EDI\n").unwrap();
//! let rule = parse_cfd(&warm, "(AC -> CT, (131 || EDI))").unwrap();
//! let (mut engine, warm_delta) = StreamEngine::warm(&warm, vec![rule], 1);
//! assert!(warm_delta.is_empty(), "the warm data is clean");
//!
//! // a violating tuple arrives …
//! let (ids, delta) = engine.insert_batch(&[vec!["131", "UN"]]).unwrap();
//! assert_eq!(delta.raised, vec![(0, Violation::Single(ids[0]))]);
//! // … and is corrected by the upstream producer
//! let delta = engine.delete_batch(&ids).unwrap();
//! assert_eq!(delta.cleared, vec![(0, Violation::Single(ids[0]))]);
//! assert!(engine.live_violations().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod engine;
pub mod remine;
mod rule;

pub use delta::{BatchDelta, RuleId};
pub use engine::StreamEngine;
pub use remine::{remine, CoverDelta, RemineOptions};
pub use rule::RuleStats;

/// Engine-assigned tuple identifier: monotone per insert, never reused,
/// stable across deletes (unlike the dense ids of a materialized scan).
pub type RowId = cfd_model::relation::TupleId;

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_model::cfd::parse_cfd;
    use cfd_model::relation::relation_from_rows;
    use cfd_model::{Schema, Violation};
    use cfd_validate::detect_violations;

    /// The cust relation of Fig. 1 (clean variant).
    fn cust() -> cfd_model::Relation {
        let schema = Schema::new(["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"]).unwrap();
        relation_from_rows(
            schema,
            &[
                vec!["01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"],
                vec!["01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"],
                vec!["01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"],
                vec!["01", "908", "2222222", "Jim", "Tree Ave.", "MH", "07974"],
                vec!["44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"],
            ],
        )
        .unwrap()
    }

    fn rules(rel: &cfd_model::Relation) -> Vec<cfd_model::Cfd> {
        vec![
            parse_cfd(rel, "([CC, ZIP] -> STR, (_, _ || _))").unwrap(),
            parse_cfd(rel, "(AC -> CT, (131 || EDI))").unwrap(),
            parse_cfd(rel, "([CC, AC] -> CT, (01, 908 || MH))").unwrap(),
        ]
    }

    #[test]
    fn warm_on_clean_data_reports_nothing() {
        let rel = cust();
        let (engine, delta) = StreamEngine::warm(&rel, rules(&rel), 2);
        assert!(delta.is_empty());
        assert!(engine.live_violations().is_empty());
        assert_eq!(engine.n_live(), 5);
        let stats = engine.stats();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.violations == 0));
        assert!(stats.iter().all(|s| (s.confidence() - 1.0).abs() < 1e-12));
        // rule 0 is a plain-pattern FD: every tuple matches its LHS
        assert_eq!(stats[0].matched(), 5);
        // rule 1 matches only the AC=131 tuple
        assert_eq!(stats[1].matched(), 1);
    }

    #[test]
    fn pair_violation_raised_and_cleared() {
        let rel = cust();
        let (mut engine, _) = StreamEngine::warm(&rel, rules(&rel), 1);
        // the new tuple shares CC,ZIP with rows 0/1/3 but has a new street
        let (ids, delta) = engine
            .insert_batch(&[vec![
                "01", "908", "4444444", "Pat", "Oak Ln.", "MH", "07974",
            ]])
            .unwrap();
        let t = ids[0];
        assert_eq!(t, 5);
        assert_eq!(delta.cleared, vec![]);
        assert_eq!(delta.raised, vec![(0, Violation::Pair(0, t))]);
        let stats = engine.stats();
        assert_eq!(stats[0].violations, 1);
        assert!(stats[0].confidence() < 1.0);
        // deleting the dissenter restores a clean state
        let delta = engine.delete_batch(&[t]).unwrap();
        assert_eq!(delta.cleared, vec![(0, Violation::Pair(0, t))]);
        assert!(engine.live_violations().is_empty());
    }

    #[test]
    fn witness_deletion_reanchors_the_group() {
        let rel = cust();
        let rules = vec![parse_cfd(&rel, "([CC, ZIP] -> STR, (_, _ || _))").unwrap()];
        let (mut engine, _) = StreamEngine::warm(&rel, rules, 1);
        // two dissenting streets in the 01/07974 group anchored at row 0
        let (ids, delta) = engine
            .insert_batch(&[
                vec!["01", "908", "5555555", "Ann", "Oak Ln.", "MH", "07974"],
                vec!["01", "908", "6666666", "Bob", "Ash Rd.", "MH", "07974"],
            ])
            .unwrap();
        assert_eq!(
            delta.raised,
            vec![
                (0, Violation::Pair(0, ids[0])),
                (0, Violation::Pair(0, ids[1])),
            ]
        );
        // delete the witness (row 0): rows 1 and 3 (same street) survive;
        // the group re-anchors on row 1 and both dissenters re-attach
        let delta = engine.delete_batch(&[0]).unwrap();
        assert_eq!(
            delta.cleared,
            vec![
                (0, Violation::Pair(0, ids[0])),
                (0, Violation::Pair(0, ids[1])),
            ]
        );
        assert_eq!(
            delta.raised,
            vec![
                (0, Violation::Pair(1, ids[0])),
                (0, Violation::Pair(1, ids[1])),
            ]
        );
        // and the live set matches a fresh batch scan of the live instance
        reconcile(&engine);
    }

    #[test]
    fn unseen_values_get_fresh_codes() {
        let rel = cust();
        let (mut engine, _) = StreamEngine::warm(&rel, rules(&rel), 1);
        // a brand-new country/city pair, never in the warm dictionaries
        let (ids, delta) = engine
            .insert_batch(&[vec!["49", "308", "7", "Uwe", "Bahnstr.", "B", "10115"]])
            .unwrap();
        assert!(delta.is_empty(), "{delta:?}");
        assert_eq!(
            engine.row_values(ids[0]).unwrap(),
            vec!["49", "308", "7", "Uwe", "Bahnstr.", "B", "10115"]
        );
        // a second tuple in the same new group with a different street
        let (ids2, delta) = engine
            .insert_batch(&[vec!["49", "131", "8", "Eva", "Ringstr.", "B", "10115"]])
            .unwrap();
        assert!(delta
            .raised
            .contains(&(0, Violation::Pair(ids[0], ids2[0]))));
        reconcile(&engine);
    }

    #[test]
    fn transient_violations_cancel_within_a_batch() {
        let rel = cust();
        let rules = vec![parse_cfd(&rel, "([CC, ZIP] -> STR, (_, _ || _))").unwrap()];
        let (mut engine, _) = StreamEngine::warm(&rel, rules, 1);
        let (ids, _) = engine
            .insert_batch(&[vec![
                "01", "908", "5555555", "Ann", "Oak Ln.", "MH", "07974",
            ]])
            .unwrap();
        // delete the witness and the dissenter together: the re-anchored
        // dissent never surfaces in the delta
        let delta = engine.delete_batch(&[0, ids[0]]).unwrap();
        assert_eq!(delta.cleared, vec![(0, Violation::Pair(0, ids[0]))]);
        assert_eq!(delta.raised, vec![]);
        reconcile(&engine);
    }

    #[test]
    fn delete_validation() {
        let rel = cust();
        let (mut engine, _) = StreamEngine::warm(&rel, rules(&rel), 1);
        assert!(engine.delete_batch(&[99]).is_err(), "unknown id");
        assert!(engine.delete_batch(&[0, 0]).is_err(), "duplicate in batch");
        engine.delete_batch(&[0]).unwrap();
        assert!(engine.delete_batch(&[0]).is_err(), "double delete");
        assert_eq!(engine.n_live(), 4);
        assert_eq!(engine.n_total(), 5);
        // wrong-width insert is rejected before any mutation
        assert!(engine.insert_batch(&[vec!["just", "two"]]).is_err());
        assert_eq!(engine.n_total(), 5);
    }

    #[test]
    fn sharding_is_behaviorally_invisible() {
        let rel = cust();
        let dirty = vec![
            vec!["01", "908", "9", "Zed", "Low St.", "MH", "07974"],
            vec!["44", "131", "9", "Kim", "High St.", "UN", "EH4 1DT"],
        ];
        let mut all: Vec<Vec<(usize, Violation)>> = Vec::new();
        for shards in [1usize, 2, 3, 8] {
            let (mut engine, warm_delta) = StreamEngine::warm(&rel, rules(&rel), shards);
            assert!(warm_delta.is_empty());
            let (_, d1) = engine.insert_batch(&dirty).unwrap();
            assert!(!d1.is_empty());
            all.push(engine.live_violations());
            reconcile(&engine);
        }
        assert!(all.windows(2).all(|w| w[0] == w[1]));
        // shard count is capped by the rule count
        let (engine, _) = StreamEngine::warm(&rel, rules(&rel), 8);
        assert_eq!(engine.n_shards(), 3);
    }

    /// Asserts the engine's live violation set equals a batch scan of
    /// the materialized live instance.
    fn reconcile(engine: &StreamEngine) {
        let mat = engine.materialize();
        let ids = engine.live_ids();
        let mut want: Vec<(usize, Violation)> = detect_violations(&mat, engine.rules())
            .into_iter()
            .map(|(r, v)| {
                (
                    r,
                    match v {
                        Violation::Single(t) => Violation::Single(ids[t as usize]),
                        Violation::Pair(a, b) => Violation::Pair(ids[a as usize], ids[b as usize]),
                    },
                )
            })
            .collect();
        want.sort_unstable();
        assert_eq!(engine.live_violations(), want);
    }

    #[test]
    fn materialize_preserves_codes_and_order() {
        let rel = cust();
        let (mut engine, _) = StreamEngine::warm(&rel, rules(&rel), 1);
        engine.delete_batch(&[1, 3]).unwrap();
        engine
            .insert_batch(&[vec!["01", "212", "2", "Max", "5th Ave", "NYC", "01202"]])
            .unwrap();
        let mat = engine.materialize();
        assert_eq!(mat.n_rows(), 4);
        assert_eq!(mat.tuple_values(0), rel.tuple_values(0));
        assert_eq!(mat.tuple_values(1), rel.tuple_values(2));
        assert_eq!(mat.tuple_values(2), rel.tuple_values(4));
        assert_eq!(
            mat.tuple_values(3),
            vec!["01", "212", "2", "Max", "5th Ave", "NYC", "01202"]
        );
        // codes comparable with the warm relation
        assert_eq!(mat.code(0, 0), rel.code(0, 0));
    }
}
