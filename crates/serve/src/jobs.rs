//! Jobs: submitted work, its lifecycle, and the bounded queue workers
//! drain.
//!
//! A [`Job`] is the server-side ticket for one discover/check/repair
//! request: a global sequential id, a cancellation flag, a state
//! machine (`queued → running → done | failed | cancelled`), and the
//! subscriber channel its progress events and final result stream to.
//! The [`JobQueue`] in front of the workers is bounded — a submission
//! past the cap is *rejected* with a structured `queue_full` error
//! rather than queued without limit, so a flood of requests degrades
//! into fast failures instead of unbounded memory growth (admission
//! control, like the registry's byte budget).
//!
//! Execution ([`run_spec`]) is deliberately a pure function of the
//! spec and a [`Control`]: workers own nothing but the borrowed
//! handle, which is how `cancel` reaches a running job (its flag is
//! polled at the algorithm's own checkpoints) and how per-job metrics
//! and progress reach the server's registry and the subscribed client.

use crate::protocol::{error_json, event, ServeError};
use crate::registry::{lock_unpoisoned, Dataset};
use crate::session::attach_rule_texts;
use cfd_core::api::{Algo, DiscoverError, DiscoverOptions, Discoverer, SearchStats};
use cfd_core::Ctane;
use cfd_model::{CanonicalCover, Cfd, Control, Json, Relation, RuleMeasure};
use cfd_partition::RelationIndex;
use cfd_stream::{CoverDelta, RemineOptions, StreamEngine};
use cfd_validate::ValidateOptions;
use std::collections::VecDeque;
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// What kind of work a job carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// CFD discovery over a registered dataset.
    Discover,
    /// Cover validation over a registered dataset.
    Check,
    /// Repair suggestion (edits are returned, never applied).
    Repair,
    /// Drift-triggered scoped re-mining of a cover over a registered
    /// dataset.
    Remine,
}

impl JobKind {
    /// Wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Discover => "discover",
            JobKind::Check => "check",
            JobKind::Repair => "repair",
            JobKind::Remine => "remine",
        }
    }
}

/// Terminal outcome of a job.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Finished; the op-specific result document.
    Done(Json),
    /// Failed with a structured error.
    Failed(ServeError),
    /// Stopped through its cancellation flag (or cancelled while
    /// still queued).
    Cancelled,
}

enum Phase {
    Queued,
    Running,
    Finished(JobOutcome),
}

/// One submitted job: id, cancellation flag, state machine, and the
/// subscriber its events stream to.
pub struct Job {
    /// Global sequential id (1-based).
    pub id: u64,
    /// What the job does.
    pub kind: JobKind,
    /// The dataset it runs against.
    pub dataset: String,
    /// Sync jobs carry their result in the submission reply; their
    /// terminal event is suppressed (progress still streams).
    pub sync: bool,
    /// The flag `cancel` sets and [`Control::check`] polls.
    pub cancel: AtomicBool,
    /// Per-job deadline budget (request `timeout_ms`, else the
    /// server-wide default). The clock starts when a worker *picks the
    /// job up*, not at submission — queue wait does not count.
    pub timeout: Option<Duration>,
    /// The submitting session's id (fault-point scoping).
    pub session: u64,
    phase: Mutex<Phase>,
    done_cv: Condvar,
    subscriber: Mutex<Option<Sender<String>>>,
}

impl Job {
    /// A queued job whose events go to `subscriber` (the submitting
    /// connection's writer channel).
    pub fn new(
        id: u64,
        kind: JobKind,
        dataset: String,
        sync: bool,
        subscriber: Sender<String>,
    ) -> Arc<Job> {
        Job::with_limits(id, kind, dataset, sync, subscriber, None, 0)
    }

    /// [`Job::new`] plus the robustness knobs: a deadline budget and
    /// the submitting session's id.
    pub fn with_limits(
        id: u64,
        kind: JobKind,
        dataset: String,
        sync: bool,
        subscriber: Sender<String>,
        timeout: Option<Duration>,
        session: u64,
    ) -> Arc<Job> {
        Arc::new(Job {
            id,
            kind,
            dataset,
            sync,
            cancel: AtomicBool::new(false),
            timeout,
            session,
            phase: Mutex::new(Phase::Queued),
            done_cv: Condvar::new(),
            subscriber: Mutex::new(Some(subscriber)),
        })
    }

    /// Streams one event line to the subscriber (silently dropped when
    /// the client is gone — a job never fails because its watcher
    /// hung up).
    pub fn send_event(&self, kind: &str, fields: Vec<(String, Json)>) {
        if let Some(tx) = lock_unpoisoned(&self.subscriber).as_ref() {
            let _ = tx.send(event(kind, self.id, fields).to_string());
        }
    }

    /// Marks the job running and announces it.
    pub fn set_running(&self) {
        *lock_unpoisoned(&self.phase) = Phase::Running;
        self.send_event(
            "started",
            vec![("kind".into(), Json::from(self.kind.name()))],
        );
    }

    /// Records the terminal outcome, wakes waiters, emits the terminal
    /// event (async jobs only), and drops the subscriber sender — a
    /// finished job must not keep its connection's writer thread
    /// alive.
    pub fn finish(&self, outcome: JobOutcome) {
        {
            let mut phase = lock_unpoisoned(&self.phase);
            if matches!(*phase, Phase::Finished(_)) {
                return;
            }
            *phase = Phase::Finished(outcome.clone());
        }
        self.done_cv.notify_all();
        if !self.sync {
            match &outcome {
                JobOutcome::Done(result) => {
                    self.send_event("done", vec![("result".into(), result.clone())])
                }
                JobOutcome::Failed(e) => {
                    self.send_event("failed", vec![("error".into(), error_json(e))])
                }
                JobOutcome::Cancelled => self.send_event("cancelled", Vec::new()),
            }
        }
        *lock_unpoisoned(&self.subscriber) = None;
    }

    /// Blocks until the job reaches a terminal state (the sync-mode
    /// wait), returning the outcome.
    pub fn wait(&self) -> JobOutcome {
        let mut phase = lock_unpoisoned(&self.phase);
        loop {
            if let Phase::Finished(outcome) = &*phase {
                return outcome.clone();
            }
            phase = self
                .done_cv
                .wait(phase)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Wire name of the current state.
    pub fn state_name(&self) -> &'static str {
        match &*lock_unpoisoned(&self.phase) {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Finished(JobOutcome::Done(_)) => "done",
            Phase::Finished(JobOutcome::Failed(_)) => "failed",
            Phase::Finished(JobOutcome::Cancelled) => "cancelled",
        }
    }

    /// The job's row for `jobs` / `status` replies; `with_result`
    /// additionally carries a terminal result or error.
    pub fn to_json(&self, with_result: bool) -> Json {
        let mut fields = vec![
            ("job".to_string(), Json::from(self.id)),
            ("kind".to_string(), Json::from(self.kind.name())),
            ("dataset".to_string(), Json::from(self.dataset.as_str())),
            ("state".to_string(), Json::from(self.state_name())),
        ];
        if with_result {
            if let Phase::Finished(outcome) = &*lock_unpoisoned(&self.phase) {
                match outcome {
                    JobOutcome::Done(result) => fields.push(("result".to_string(), result.clone())),
                    JobOutcome::Failed(e) => fields.push(("error".to_string(), error_json(e))),
                    JobOutcome::Cancelled => {}
                }
            }
        }
        Json::Obj(fields)
    }
}

/// The parsed, admission-checked work a worker executes: every variant
/// holds its dataset `Arc` (so `unregister` cannot pull data out from
/// under a running job) and everything else was validated at
/// submission, so workers never reject.
pub enum JobSpec {
    /// Discovery via [`Discoverer::discover_indexed`] against the
    /// dataset's shared index.
    Discover {
        /// Target dataset.
        ds: Arc<Dataset>,
        /// Algorithm to run.
        algo: Algo,
        /// Validated options.
        opts: DiscoverOptions,
        /// CTANE partition-store budget for this job, in bytes.
        cache_budget: Option<usize>,
    },
    /// Validation via [`cfd_validate::validate_indexed`].
    Check {
        /// Target dataset.
        ds: Arc<Dataset>,
        /// Parsed rules with their wire texts.
        rules: Vec<(String, Cfd)>,
        /// Kernel options.
        opts: ValidateOptions,
    },
    /// Repair suggestion for a cover.
    Repair {
        /// Target dataset.
        ds: Arc<Dataset>,
        /// Parsed rules with their wire texts.
        rules: Vec<(String, Cfd)>,
    },
    /// One [`cfd_stream::remine()`] cycle: warm a streaming engine over
    /// the dataset with the cover, then re-mine whatever drifted.
    Remine {
        /// Target dataset.
        ds: Arc<Dataset>,
        /// Parsed rules with their wire texts.
        rules: Vec<(String, Cfd)>,
        /// Cycle knobs (θ, expansion budget, support, threads).
        opts: RemineOptions,
    },
}

/// CTANE against a dataset's shared pinned [`PartitionStore`]: the
/// default discover path for CTANE jobs without a per-job
/// `cache_budget`. Same `Discoverer` contract (covers are
/// byte-identical to a cold run — the store trades recomputation
/// only), but stripped partitions survive the job inside the dataset,
/// so the next CTANE job on it starts warm.
///
/// [`PartitionStore`]: cfd_partition::PartitionStore
struct SeededCtane<'a> {
    ds: &'a Dataset,
}

impl SeededCtane<'_> {
    /// Mirrors `Ctane::configured`: shared knobs from the options.
    fn configured(&self, opts: &DiscoverOptions) -> Ctane {
        let mut ctane = Ctane::new(opts.k)
            .min_confidence(opts.min_confidence)
            .threads(opts.threads.max(1));
        if let Some(max_lhs) = opts.max_lhs {
            ctane = ctane.max_lhs(max_lhs);
        }
        ctane
    }
}

impl Discoverer for SeededCtane<'_> {
    fn algo(&self) -> Algo {
        Algo::Ctane
    }

    fn run(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<CanonicalCover, DiscoverError> {
        Ok(self.run_measured(rel, opts, ctrl, stats)?.0)
    }

    fn run_measured(
        &self,
        rel: &Relation,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Option<Vec<RuleMeasure>>), DiscoverError> {
        let index = RelationIndex::new(rel);
        self.run_measured_indexed(rel, &index, opts, ctrl, stats)
    }

    fn run_measured_indexed(
        &self,
        rel: &Relation,
        index: &RelationIndex,
        opts: &DiscoverOptions,
        ctrl: &Control<'_>,
        stats: &mut SearchStats,
    ) -> Result<(CanonicalCover, Option<Vec<RuleMeasure>>), DiscoverError> {
        // lock_store recovers from poisoning (a panicked job restarts
        // the cache cold) — one panic must not wedge the dataset
        let mut store = self.ds.lock_store();
        let out = self
            .configured(opts)
            .run_measured_seeded(rel, index, &mut store, ctrl, stats);
        // release the run's pins so entries stay resident for the next
        // job but become evictable under the dataset's byte budget
        store.unpin_all();
        let (cover, measures) = out?;
        Ok((cover, Some(measures)))
    }
}

/// Runs a spec under `ctrl`, returning the result document. This is
/// the entire worker-side logic: cancellation surfaces as
/// [`JobOutcome::Cancelled`], any other failure as a structured error.
pub fn run_spec(spec: &JobSpec, ctrl: &Control<'_>) -> JobOutcome {
    match spec {
        JobSpec::Discover {
            ds,
            algo,
            opts,
            cache_budget,
        } => {
            // CTANE without an explicit budget warm-starts from the
            // dataset's shared pinned store; an explicit
            // `cache_budget_mb` keeps the old per-job private store
            // (its budget is a per-job resource). Every other
            // algorithm ignores both.
            let disc: Box<dyn Discoverer + '_> = match (algo, cache_budget) {
                (Algo::Ctane, Some(bytes)) => Box::new(Ctane::new(opts.k).cache_budget(*bytes)),
                (Algo::Ctane, None) => Box::new(SeededCtane { ds }),
                _ => algo.discoverer(),
            };
            match disc.discover_indexed(&ds.rel, Some(&ds.index), opts, ctrl) {
                Ok(d) => JobOutcome::Done(d.to_json(&ds.rel)),
                Err(DiscoverError::Cancelled) => JobOutcome::Cancelled,
                Err(e) => JobOutcome::Failed(ServeError::new("bad_options", e.to_string())),
            }
        }
        JobSpec::Check { ds, rules, opts } => {
            if ctrl.check().is_err() {
                return JobOutcome::Cancelled;
            }
            let report = cfd_validate::validate_indexed(
                &ds.rel,
                rules.iter().map(|(_, c)| c),
                &ds.index,
                opts,
                ctrl,
            );
            let mut doc = report.to_json();
            attach_rule_texts(&mut doc, rules);
            JobOutcome::Done(doc)
        }
        JobSpec::Repair { ds, rules } => {
            if ctrl.check().is_err() {
                return JobOutcome::Cancelled;
            }
            let cfds: Vec<&Cfd> = rules.iter().map(|(_, c)| c).collect();
            let before = cfd_validate::detect_violations(&ds.rel, cfds.iter().copied()).len();
            let edits = cfd_validate::suggest_repairs_for_cover(&ds.rel, cfds.iter().copied());
            let fixed = cfd_model::apply_repairs(&ds.rel, &edits);
            let after = cfd_validate::detect_violations(&fixed, cfds.iter().copied()).len();
            let edit_docs = Json::arr(edits.iter().map(|r| {
                let dict = ds.rel.column(r.attr).dict();
                Json::obj([
                    ("tuple", Json::from(r.tuple)),
                    ("attr", Json::from(ds.rel.schema().name(r.attr))),
                    ("current", Json::from(dict.value(r.current))),
                    ("suggested", Json::from(dict.value(r.suggested))),
                ])
            }));
            JobOutcome::Done(Json::obj([
                ("edits", edit_docs),
                ("violations_before", Json::from(before)),
                ("violations_after", Json::from(after)),
            ]))
        }
        JobSpec::Remine { ds, rules, opts } => {
            if ctrl.check().is_err() {
                return JobOutcome::Cancelled;
            }
            let cfds: Vec<Cfd> = rules.iter().map(|(_, c)| c.clone()).collect();
            let (mut engine, _) = StreamEngine::warm(&ds.rel, cfds, opts.threads.max(1));
            match cfd_stream::remine(&mut engine, opts, ctrl) {
                Err(_) => JobOutcome::Cancelled,
                Ok(None) => JobOutcome::Done(Json::obj([
                    ("triggered", Json::from(false)),
                    ("rules", Json::from(engine.rules().len())),
                ])),
                Ok(Some(delta)) => JobOutcome::Done(remine_result(&engine, &delta)),
            }
        }
    }
}

/// Serializes one [`CoverDelta`] as the `remine` job's result
/// document: neighborhood (attribute names), retired and added rules
/// with their measures, and the kernel-validated post-state.
fn remine_result(engine: &StreamEngine, delta: &CoverDelta) -> Json {
    let schema = engine.schema();
    let neighborhood = Json::arr(
        delta
            .neighborhood
            .iter()
            .map(|&a| Json::from(schema.name(a))),
    );
    let rule_doc = |text: &str, m: &RuleMeasure| {
        Json::obj([
            ("text", Json::from(text)),
            ("support", Json::from(m.support)),
            ("removals", Json::from(m.violations)),
            ("confidence", Json::from(m.confidence())),
        ])
    };
    let retired = Json::arr(delta.retired.iter().map(|r| rule_doc(&r.text, &r.measure)));
    let added = Json::arr(
        delta
            .replacement_texts
            .iter()
            .zip(&delta.replacement_measures)
            .map(|(t, m)| rule_doc(t, m)),
    );
    let min_confidence = delta
        .post_measures
        .iter()
        .map(RuleMeasure::confidence)
        .fold(1.0_f64, f64::min);
    Json::obj([
        ("triggered", Json::from(true)),
        ("neighborhood", neighborhood),
        ("retired", retired),
        ("added", added),
        ("rules", Json::from(engine.rules().len())),
        ("min_confidence", Json::from(min_confidence)),
    ])
}

struct QueueInner {
    pending: VecDeque<(Arc<Job>, JobSpec)>,
    running: usize,
    closed: bool,
}

/// The bounded FIFO between connections and workers. Submission past
/// the depth cap fails fast (`queue_full`); closing lets workers drain
/// what is pending, then stop.
pub struct JobQueue {
    max_depth: usize,
    inner: Mutex<QueueInner>,
    work_cv: Condvar,
    idle_cv: Condvar,
}

impl JobQueue {
    /// A queue admitting at most `max_depth` pending jobs.
    pub fn new(max_depth: usize) -> JobQueue {
        JobQueue {
            max_depth,
            inner: Mutex::new(QueueInner {
                pending: VecDeque::new(),
                running: 0,
                closed: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        }
    }

    /// Enqueues a job, or rejects it: `shutting_down` once closed,
    /// `queue_full` past the depth cap.
    pub fn submit(&self, job: Arc<Job>, spec: JobSpec) -> Result<(), ServeError> {
        let mut q = lock_unpoisoned(&self.inner);
        if q.closed {
            return Err(ServeError::new(
                "shutting_down",
                "server is shutting down; no new jobs",
            ));
        }
        if q.pending.len() >= self.max_depth {
            return Err(ServeError::new(
                "queue_full",
                format!(
                    "job queue is at its depth cap ({}); retry after a job finishes",
                    self.max_depth
                ),
            ));
        }
        q.pending.push_back((job, spec));
        drop(q);
        self.work_cv.notify_one();
        Ok(())
    }

    /// Worker entry: blocks for the next job, `None` once the queue is
    /// closed *and* drained. The popped job counts as running until
    /// [`JobQueue::done`].
    pub fn pop(&self) -> Option<(Arc<Job>, JobSpec)> {
        let mut q = lock_unpoisoned(&self.inner);
        loop {
            if let Some(item) = q.pending.pop_front() {
                q.running += 1;
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self.work_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks one popped job finished.
    pub fn done(&self) {
        let mut q = lock_unpoisoned(&self.inner);
        q.running -= 1;
        if q.pending.is_empty() && q.running == 0 {
            drop(q);
            self.idle_cv.notify_all();
        }
    }

    /// Removes `job_id` from the pending queue if it has not been
    /// picked up yet — the fast path of `cancel`. Returns the job when
    /// it was still pending.
    pub fn take_pending(&self, job_id: u64) -> Option<Arc<Job>> {
        let mut q = lock_unpoisoned(&self.inner);
        let at = q.pending.iter().position(|(j, _)| j.id == job_id)?;
        let (job, _) = q.pending.remove(at)?;
        if q.pending.is_empty() && q.running == 0 {
            drop(q);
            self.idle_cv.notify_all();
        }
        Some(job)
    }

    /// Stops admission and wakes idle workers so they can exit once
    /// the backlog drains.
    pub fn close(&self) {
        lock_unpoisoned(&self.inner).closed = true;
        self.work_cv.notify_all();
    }

    /// The shutdown snapshot, atomically: stops admission, removes
    /// every still-pending job (returned for deterministic
    /// cancellation — queued work is *flushed*, not drained), and
    /// reports how many jobs were running at that instant (the ones
    /// the shutdown drain will wait for). Workers are woken so they
    /// exit once the running set finishes.
    pub fn close_and_flush(&self) -> (Vec<Arc<Job>>, usize) {
        let (flushed, running) = {
            let mut q = lock_unpoisoned(&self.inner);
            q.closed = true;
            let flushed: Vec<Arc<Job>> = q.pending.drain(..).map(|(job, _)| job).collect();
            (flushed, q.running)
        };
        self.work_cv.notify_all();
        if running == 0 {
            self.idle_cv.notify_all();
        }
        (flushed, running)
    }

    /// Blocks until nothing is pending or running — the shutdown
    /// drain (cancelled jobs exit at their next checkpoint, so this
    /// terminates).
    pub fn wait_idle(&self) {
        let mut q = lock_unpoisoned(&self.inner);
        while !(q.pending.is_empty() && q.running == 0) {
            q = self.idle_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pending jobs right now (`stats` gauge).
    pub fn depth(&self) -> usize {
        lock_unpoisoned(&self.inner).pending.len()
    }

    /// Running jobs right now (`stats` gauge).
    pub fn running(&self) -> usize {
        lock_unpoisoned(&self.inner).running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn ticket(id: u64) -> (Arc<Job>, std::sync::mpsc::Receiver<String>) {
        let (tx, rx) = channel();
        (Job::new(id, JobKind::Discover, "t".into(), false, tx), rx)
    }

    fn noop_spec() -> JobSpec {
        use cfd_model::csv::relation_from_csv_str;
        let rel = relation_from_csv_str("A,B\nx,1\n").unwrap();
        JobSpec::Repair {
            ds: Arc::new(crate::registry::Dataset::new("t", rel)),
            rules: Vec::new(),
        }
    }

    #[test]
    fn queue_enforces_depth_and_drains_on_close() {
        let q = JobQueue::new(2);
        let (j1, _r1) = ticket(1);
        let (j2, _r2) = ticket(2);
        let (j3, _r3) = ticket(3);
        q.submit(j1, noop_spec()).unwrap();
        q.submit(j2, noop_spec()).unwrap();
        assert_eq!(q.submit(j3, noop_spec()).unwrap_err().code, "queue_full");
        assert_eq!(q.depth(), 2);
        // cancel-while-queued removes from the backlog
        assert_eq!(q.take_pending(2).unwrap().id, 2);
        assert!(q.take_pending(2).is_none());
        q.close();
        let (j4, _r4) = ticket(4);
        assert_eq!(q.submit(j4, noop_spec()).unwrap_err().code, "shutting_down");
        // closed + non-empty still hands out work, then stops
        assert_eq!(q.pop().unwrap().0.id, 1);
        q.done();
        assert!(q.pop().is_none());
        q.wait_idle();
    }

    #[test]
    fn close_and_flush_reports_the_shutdown_snapshot() {
        let q = JobQueue::new(8);
        let (j1, _r1) = ticket(1);
        let (j2, _r2) = ticket(2);
        let (j3, _r3) = ticket(3);
        q.submit(j1, noop_spec()).unwrap();
        q.submit(j2, noop_spec()).unwrap();
        q.submit(j3, noop_spec()).unwrap();
        // one job is mid-run when shutdown arrives
        let popped = q.pop().unwrap();
        assert_eq!(popped.0.id, 1);
        let (flushed, running) = q.close_and_flush();
        assert_eq!(running, 1, "job 1 was running at the snapshot");
        let ids: Vec<u64> = flushed.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![2, 3], "queued jobs are flushed in order");
        assert_eq!(q.depth(), 0);
        // the running job finishes; wait_idle returns; workers stop
        q.done();
        q.wait_idle();
        assert!(q.pop().is_none());
        // an empty queue reports (nothing flushed, nothing running)
        let q = JobQueue::new(2);
        let (flushed, running) = q.close_and_flush();
        assert!(flushed.is_empty() && running == 0);
        q.wait_idle();
    }

    #[test]
    fn job_lifecycle_streams_events_and_wakes_waiters() {
        let (job, rx) = ticket(7);
        assert_eq!(job.state_name(), "queued");
        job.set_running();
        assert_eq!(job.state_name(), "running");
        let started = rx.recv().unwrap();
        assert!(started.contains("\"started\""), "got {started}");
        assert!(started.contains("\"job\":7"), "got {started}");
        job.send_event("progress", vec![("done".into(), Json::from(1usize))]);
        assert!(rx.recv().unwrap().contains("\"progress\""));
        job.finish(JobOutcome::Done(Json::obj([("x", Json::from(1usize))])));
        assert_eq!(job.state_name(), "done");
        let done = rx.recv().unwrap();
        assert!(done.contains("\"done\""), "got {done}");
        assert!(done.contains("\"result\""), "got {done}");
        // terminal: subscriber dropped, no more events possible
        assert!(rx.recv().is_err());
        assert!(matches!(job.wait(), JobOutcome::Done(_)));
        // double-finish is a no-op
        job.finish(JobOutcome::Cancelled);
        assert_eq!(job.state_name(), "done");
    }

    #[test]
    fn sync_jobs_suppress_the_terminal_event() {
        let (tx, rx) = channel();
        let job = Job::new(9, JobKind::Check, "t".into(), true, tx);
        job.set_running();
        let _ = rx.recv().unwrap(); // started still streams
        job.finish(JobOutcome::Cancelled);
        assert!(rx.recv().is_err(), "no terminal event in sync mode");
        assert!(matches!(job.wait(), JobOutcome::Cancelled));
    }
}
