//! Criterion micro-benchmark for the streaming engine: tuple-update
//! throughput (inserts + deletes per second) of `StreamEngine` batch
//! application at 1/2/4 rule shards, on the tax workload.
//!
//! Each iteration inserts one batch of fresh tuples and deletes it
//! again, so the engine's live state is identical across samples and
//! the number reported is steady-state update throughput under a rule
//! cover actually discovered on the warm data. Future PRs track this
//! line to keep the serving path's perf trajectory visible.

use cfd_core::FastCfd;
use cfd_datagen::tax::TaxGenerator;
use cfd_stream::StreamEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    const WARM: usize = 2_000;
    const BATCH: usize = 256;

    // one relation; the warm prefix shares dictionaries with the tail,
    // so tail rows stream in as pre-encoded batches
    let rel = TaxGenerator::new(WARM + BATCH).generate();
    let warm_rows: Vec<u32> = (0..WARM as u32).collect();
    let warm = rel.restrict(&warm_rows);
    let rules: Vec<_> = FastCfd::new((WARM / 100).max(2))
        .discover(&warm)
        .into_iter()
        .collect();
    let batch: Vec<Vec<u32>> = (WARM as u32..(WARM + BATCH) as u32)
        .map(|t| (0..rel.arity()).map(|a| rel.code(t, a)).collect())
        .collect();

    let mut group = c.benchmark_group("streaming");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
        // one iteration applies BATCH inserts and BATCH deletes
        .throughput(Throughput::Elements(2 * BATCH as u64));
    for shards in [1usize, 2, 4] {
        let (mut engine, _) = StreamEngine::warm(&warm, rules.clone(), shards);
        group.bench_with_input(
            BenchmarkId::new("insert_delete", shards),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let first = engine.n_total() as u32;
                    engine.insert_coded(batch.clone());
                    let ids: Vec<u32> = (first..first + BATCH as u32).collect();
                    engine.delete_batch(&ids).expect("batch rows are live");
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
