//! Object identification with constant CFDs (Section 1: "constant CFDs
//! are particularly important for object identification, which is
//! essential to data cleaning and data integration").
//!
//! Constant CFDs are instance-level rules binding concrete values — e.g.
//! "area code 908 implies city MH" — which let two records be recognized
//! as describing the same real-world entity even when some fields
//! disagree. CFDMiner finds them orders of magnitude faster than the
//! general algorithms because it never touches variable patterns.
//!
//! ```sh
//! cargo run --release --example object_identification
//! ```

use cfd_suite::datagen::tax::TaxGenerator;
use cfd_suite::prelude::*;

fn main() {
    let rel = TaxGenerator::new(5_000).seed(3).generate();
    println!(
        "customer sample: {} tuples × {} attributes",
        rel.n_rows(),
        rel.arity()
    );

    let k = 25;
    let ctrl = Control::default();
    let mined = Algo::CfdMiner
        .discover_with(&rel, &DiscoverOptions::new(k), &ctrl)
        .unwrap();
    let constants = &mined.cover;
    let t_miner = mined.total_time();
    println!(
        "\nCFDMiner: {} constant CFDs at k = {k} in {:.2?} ({} free sets mined)",
        constants.len(),
        t_miner,
        mined.stats.free_sets,
    );
    for cfd in constants.iter().take(10) {
        println!("  {}", cfd.display(&rel));
    }
    if constants.len() > 10 {
        println!("  … {} more", constants.len() - 10);
    }

    // the same constant rules via full general discovery, for comparison
    let full = Algo::FastCfd
        .discover_with(&rel, &DiscoverOptions::new(k), &ctrl)
        .unwrap();
    let t_full = full.total_time();
    assert_eq!(constants.cfds(), full.cover.constant_cover().cfds());
    println!(
        "\nFastCFD finds the same constant fragment (plus {} variable \
         CFDs) in {:.2?} — {:.1}× the CFDMiner time",
        full.cover.counts().1,
        t_full,
        t_full.as_secs_f64() / t_miner.as_secs_f64().max(1e-9)
    );

    // object identification: use the constant rules as an entity signature
    // — two tuples that agree on every rule's LHS pattern must agree on
    // the bound attributes, so consistent records can be merged
    let sig_rules: Vec<&Cfd> = constants.iter().take(5).collect();
    println!("\nsignature rules used for matching:");
    for c in &sig_rules {
        println!("  {}", c.display(&rel));
    }
    let violating = detect_violations(&rel, sig_rules.iter().copied());
    println!(
        "{} records inconsistent with the signature rules (candidates for \
         manual resolution)",
        violating.len()
    );
}
