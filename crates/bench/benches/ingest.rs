//! The million-row ingestion bench: slurp baseline vs the chunked
//! zero-copy pipeline, serial and parallel.
//!
//! What this measures: `relation_from_csv_str` over a whole-file string
//! (the pre-PR-7 loading path — two full copies of the input resident
//! at once) against `ingest_csv_reader` streaming the same file through
//! 1 MiB chunks at 1/2/4/8 encode workers. Throughput is reported in
//! input bytes; an `# ingest:` line on stderr records the relation-side
//! memory (`Relation::memory_bytes`) and the peak scanner buffer
//! (chunk + longest-record bound), the numbers `BENCH_INGEST.json` at
//! the repository root pins.
//!
//! The row count defaults to 1_000_000; override with `INGEST_ROWS`
//! (CI smoke runs use a smaller instance). The tax CSV is written once
//! to a temp file by the streaming generator — the bench never holds
//! the input and the relation in memory at the same time on the
//! chunked path. Re-run with
//! `cargo bench -p cfd-bench --bench ingest` and update
//! `BENCH_INGEST.json` (with machine notes — thread scaling is
//! meaningless without the core count) when the numbers move.

use cfd_datagen::tax::TaxGenerator;
use cfd_model::csv::relation_from_csv_str;
use cfd_model::progress::Control;
use cfd_model::{ingest_csv_reader, IngestOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::fs::File;
use std::io::{BufWriter, Read};
use std::time::Duration;

fn rows() -> usize {
    std::env::var("INGEST_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

fn bench(c: &mut Criterion) {
    let n_rows = rows();
    let path = std::env::temp_dir().join(format!("cfd-ingest-bench-{n_rows}.csv"));
    let gen = TaxGenerator::new(n_rows).seed(11);
    {
        let mut w = BufWriter::new(File::create(&path).expect("create temp CSV"));
        gen.write_csv(&mut w).expect("stream tax CSV");
    }
    let bytes = std::fs::metadata(&path).expect("stat temp CSV").len();
    let ctrl = Control::default();

    let mut group = c.benchmark_group("ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Bytes(bytes));

    // the pre-PR-7 baseline: read_to_string + whole-input parse (input
    // string and relation resident simultaneously)
    group.bench_function(BenchmarkId::new("slurp", format!("{n_rows}rows")), |b| {
        b.iter(|| {
            let mut text = String::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_string(&mut text))
                .expect("read temp CSV");
            relation_from_csv_str(&text).expect("parse tax CSV")
        })
    });

    for threads in [1usize, 2, 4, 8] {
        let opts = IngestOptions::default().threads(threads);
        let id = BenchmarkId::new("chunked", format!("{n_rows}rows/t{threads}"));
        group.bench_with_input(id, &opts, |b, opts| {
            b.iter(|| {
                let f = File::open(&path).expect("open temp CSV");
                ingest_csv_reader(f, opts, &ctrl).expect("ingest tax CSV")
            })
        });
    }
    group.finish();

    // the memory story, once, outside the timed loops: relation-side
    // bytes and the chunk-bounded reader peak vs the slurp baseline's
    // whole-input string
    let f = File::open(&path).expect("open temp CSV");
    let rel = ingest_csv_reader(f, &IngestOptions::default(), &ctrl).expect("ingest tax CSV");
    eprintln!(
        "# ingest: rows={} input_bytes={bytes} relation_bytes={} bytes_per_row={:.1} \
         (slurp additionally holds the {bytes}-byte input string; the chunked reader \
         peaks at chunk + longest record = ~{} bytes of input buffer)",
        rel.n_rows(),
        rel.memory_bytes(),
        rel.memory_bytes() as f64 / rel.n_rows() as f64,
        IngestOptions::default().chunk_bytes + 256,
    );
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench);
criterion_main!(benches);
