//! # cfd-fd
//!
//! The classical FD-discovery baselines that CTANE and FastCFD extend:
//!
//! * [`Tane`] — the level-wise algorithm of Huhtala et al. \[13\], with
//!   partition refinement, `C⁺` pruning and key pruning;
//! * [`FastFd`] — the depth-first algorithm of Wyss et al. \[14\], with
//!   difference sets and minimal-cover enumeration.
//!
//! Both return plain FDs as all-wildcard variable CFDs, so their output
//! is directly comparable with the plain-FD fragment of a discovered CFD
//! cover (`CanonicalCover::plain_fd_cover`). Like that fragment, and
//! unlike some classical presentations, `∅ → A` dependencies (constant
//! columns) are *excluded* — in the CFD world they are represented by the
//! constant CFD `(∅ → A, (‖ a))`. TANE additionally supports the classic
//! approximate variant: [`Tane::min_confidence`] emits `X → A` when the
//! g1-style partition error stays within `1 − θ` (DESIGN.md §8).
//!
//! ```
//! use cfd_fd::Tane;
//! use cfd_model::csv::relation_from_csv_str;
//!
//! // AC → CT holds on 3 of 4 tuples (131 maps to both EDI and UN)
//! let rel = relation_from_csv_str("AC,CT\n908,MH\n908,MH\n131,EDI\n131,UN\n").unwrap();
//! let fd = cfd_model::cfd::parse_cfd(&rel, "(AC -> CT, (_ || _))").unwrap();
//! assert!(!Tane::new().discover(&rel).contains(&fd));
//! let approx = Tane::new().min_confidence(0.75).discover(&rel);
//! assert!(approx.contains(&fd));
//! assert!(approx.iter().all(|c| c.is_plain_fd()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fastfd;
pub mod tane;

pub use fastfd::FastFd;
pub use tane::Tane;
